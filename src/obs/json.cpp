#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace vc2m::obs::json {

namespace {

class Parser {
 public:
  Parser(const std::string& text, const std::string& what)
      : s_(text), what_(what) {}

  Value parse() {
    Value v = value();
    skip_ws();
    VC2M_CHECK_MSG(pos_ == s_.size(),
                   what_ << " JSON: trailing garbage at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    VC2M_CHECK_MSG(pos_ < s_.size(), what_ << " JSON: unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    VC2M_CHECK_MSG(peek() == c, what_ << " JSON: expected '" << c
                                      << "' at offset " << pos_ << ", got '"
                                      << s_[pos_] << "'");
    ++pos_;
  }

  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Value value() {
    const char c = peek();  // also positions pos_ at the value start
    const std::size_t at = pos_;
    Value v = value_body(c);
    v.offset = at;
    return v;
  }

  Value value_body(char head) {
    switch (head) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.str = string();
        return v;
      }
      case 't':
      case 'f': return boolean();
      case 'n': {
        literal("null");
        return {};
      }
      // NaN / Infinity / -Infinity are not JSON. Name them explicitly: the
      // generic "expected a value" message would hide what went wrong.
      case 'N':
      case 'I':
        VC2M_CHECK_MSG(false, what_ << " JSON: non-finite number at offset "
                                    << pos_);
        std::abort();  // unreachable
      default: return number_value();
    }
  }

  void literal(const char* word) {
    for (const char* p = word; *p; ++p) {
      VC2M_CHECK_MSG(pos_ < s_.size() && s_[pos_] == *p,
                     what_ << " JSON: bad literal at offset " << pos_);
      ++pos_;
    }
  }

  Value boolean() {
    Value v;
    v.kind = Value::Kind::kBool;
    if (s_[pos_] == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
    }
    return v;
  }

  Value number_value() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) {
      VC2M_CHECK_MSG(pos_ + 1 >= s_.size() ||
                         (s_[pos_ + 1] != 'I' && s_[pos_ + 1] != 'N'),
                     what_ << " JSON: non-finite number at offset " << start);
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    VC2M_CHECK_MSG(pos_ > start,
                   what_ << " JSON: expected a value at offset " << start);
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    VC2M_CHECK_MSG(end && *end == '\0', what_ << " JSON: bad number '" << tok
                                              << "' at offset " << start);
    VC2M_CHECK_MSG(std::isfinite(d),
                   what_ << " JSON: non-finite number '" << tok
                         << "' at offset " << start);
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = d;
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      VC2M_CHECK_MSG(pos_ < s_.size(), what_ << " JSON: unterminated string");
      const char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        VC2M_CHECK_MSG(pos_ < s_.size(), what_ << " JSON: dangling escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default:
            VC2M_CHECK_MSG(false, what_ << " JSON: unsupported escape '\\"
                                        << e << "'");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    if (consume(']')) return v;
    while (true) {
      v.array.push_back(value());
      if (consume(']')) return v;
      expect(',');
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      const std::size_t key_at = pos_;
      std::string key = string();
      VC2M_CHECK_MSG(v.find(key) == nullptr,
                     what_ << " JSON: duplicate key '" << key
                           << "' at offset " << key_at);
      expect(':');
      Value member = value();
      member.key_offset = key_at;
      v.object.emplace_back(std::move(key), std::move(member));
      if (consume('}')) return v;
      expect(',');
    }
  }

  const std::string& s_;
  const std::string& what_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text, const std::string& what) {
  return Parser(text, what).parse();
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace vc2m::obs::json
