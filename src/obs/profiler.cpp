#include "obs/profiler.h"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>

namespace vc2m::obs {

namespace {

// Accumulation node keyed by name so merge order (thread registration
// order, which is scheduling-dependent) cannot affect the result.
struct MergeNode {
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::map<std::string, MergeNode> children;
};

void accumulate(MergeNode& into, const util::PhaseNode& from) {
  into.count += from.count;
  into.total_ns += from.total_ns;
  for (const auto& [name, child] : from.children)
    accumulate(into.children[name], *child);
}

PhaseStats to_stats(const std::string& name, const MergeNode& node) {
  PhaseStats out;
  out.name = name;
  out.count = node.count;
  out.total_sec = static_cast<double>(node.total_ns) * 1e-9;
  double child_total = 0;
  out.children.reserve(node.children.size());
  for (const auto& [child_name, child] : node.children) {
    out.children.push_back(to_stats(child_name, child));
    child_total += out.children.back().total_sec;
  }
  out.self_sec = std::max(0.0, out.total_sec - child_total);
  return out;
}

int tree_depth(const PhaseStats& node) {
  int d = 0;
  for (const auto& c : node.children) d = std::max(d, tree_depth(c));
  return d + 1;
}

void write_node(std::ostream& os, const PhaseStats& node, int indent,
                std::size_t name_width) {
  os << std::string(static_cast<std::size_t>(indent) * 2, ' ') << node.name
     << std::string(
            name_width - static_cast<std::size_t>(indent) * 2 -
                std::min(name_width - static_cast<std::size_t>(indent) * 2,
                         node.name.size()),
            ' ')
     << std::setw(10) << node.count << std::setw(12) << std::fixed
     << std::setprecision(4) << node.total_sec << std::setw(12)
     << node.self_sec << "\n";
  for (const auto& c : node.children)
    write_node(os, c, indent + 1, name_width);
}

std::size_t max_label_width(const PhaseStats& node, int indent) {
  std::size_t w = static_cast<std::size_t>(indent) * 2 + node.name.size();
  for (const auto& c : node.children)
    w = std::max(w, max_label_width(c, indent + 1));
  return w;
}

void flatten_into(const PhaseStats& node, const std::string& prefix,
                  std::vector<FlatPhase>& out) {
  for (const auto& c : node.children) {
    const std::string path = prefix.empty() ? c.name : prefix + "/" + c.name;
    out.push_back({path, c.count, c.total_sec, c.self_sec});
    flatten_into(c, path, out);
  }
}

}  // namespace

PhaseStats merge_trees(
    const std::vector<std::shared_ptr<const util::PhaseNode>>& trees) {
  MergeNode root;
  for (const auto& tree : trees) {
    if (!tree) continue;
    for (const auto& [name, child] : tree->children)
      accumulate(root.children[name], *child);
  }
  PhaseStats out = to_stats("", root);
  out.count = 0;  // the synthetic root has no entries of its own
  return out;
}

PhaseStats merged_profile() {
  return merge_trees(util::PhaseProfiler::trees());
}

void write_profile(std::ostream& os, const PhaseStats& root) {
  if (root.children.empty()) {
    os << "(no phases recorded)\n";
    return;
  }
  std::size_t name_width = 5;  // at least "phase"
  for (const auto& c : root.children)
    name_width = std::max(name_width, max_label_width(c, 0));
  name_width += 2;
  const auto saved_flags = os.flags();
  const auto saved_precision = os.precision();
  os << "phase" << std::string(name_width - 5, ' ') << std::setw(10)
     << "count" << std::setw(12) << "total(s)" << std::setw(12) << "self(s)"
     << "\n";
  for (const auto& c : root.children) write_node(os, c, 0, name_width);
  os.flags(saved_flags);
  os.precision(saved_precision);
}

std::vector<FlatPhase> flatten_profile(const PhaseStats& root) {
  std::vector<FlatPhase> out;
  flatten_into(root, "", out);
  return out;
}

}  // namespace vc2m::obs
