// Trace serialisation: Chrome/Perfetto `trace_event` JSON and compact CSV.
//
// The JSON form renders the schedule as tracks — one per core (which VCPU
// occupies it, throttle windows) and one per VCPU (which task executes,
// job releases/completions/misses, budget exhaustions, hypercalls) — and
// opens directly in chrome://tracing or https://ui.perfetto.dev. Besides
// the rendered `traceEvents`, the file carries a lossless `vc2mEvents`
// array (one compact record per raw event, ignored by the viewers) so a
// trace written to disk can be re-imported and replayed by the invariant
// checker. The CSV form is the same raw stream, one event per row.
//
// Field ordering and number formatting are fixed (golden-file tested):
// timestamps are emitted in microseconds with three decimals, events in
// recorded order.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulation.h"
#include "sim/trace.h"

namespace vc2m::obs {

/// A numeric time series rendered as a Perfetto counter track ("C" phase
/// events): thread-pool executed/steal/pending telemetry, queue depths…
/// Samples must be in nondecreasing time order.
struct CounterTrack {
  std::string name;
  std::vector<std::pair<util::Time, double>> samples;
};

/// Track labelling for the JSON exporter (which core each VCPU lives on,
/// which VM it belongs to). Derivable from a SimConfig; default-constructed
/// meta labels tracks by bare indices.
struct TraceMeta {
  unsigned num_cores = 0;            ///< 0: inferred from the events
  std::vector<int> vcpu_core;        ///< per VCPU; -1 = unknown
  std::vector<int> vcpu_vm;          ///< per VCPU; -1 = unknown
  std::vector<std::string> task_labels;  ///< optional, per task
  /// Optional counter tracks shown as a separate "telemetry" process.
  /// Empty (the default) emits nothing, so existing golden traces are
  /// byte-identical.
  std::vector<CounterTrack> counters;

  static TraceMeta from_config(const sim::SimConfig& cfg);
};

/// Chrome trace_event JSON ("JSON Object Format" with a traceEvents
/// array), one event per line.
void write_chrome_trace(std::ostream& os,
                        std::span<const sim::TraceEvent> events,
                        const TraceMeta& meta = {});

/// Compact CSV: header `time_ns,kind,core,vcpu,task,job`, one event/row.
void write_trace_csv(std::ostream& os,
                     std::span<const sim::TraceEvent> events);

/// Re-import a CSV trace written by write_trace_csv. Throws util::Error on
/// malformed rows or unknown kinds.
std::vector<sim::TraceEvent> read_trace_csv(std::istream& is);

/// Re-import the `vc2mEvents` array of a JSON trace written by
/// write_chrome_trace. Throws util::Error when the array is absent.
std::vector<sim::TraceEvent> read_chrome_trace(std::istream& is);

/// Dispatch on file extension (.csv → CSV, anything else → JSON); writes
/// the file and throws util::Error when it cannot be opened.
void write_trace_file(const std::string& path,
                      std::span<const sim::TraceEvent> events,
                      const TraceMeta& meta = {});
std::vector<sim::TraceEvent> read_trace_file(const std::string& path);

}  // namespace vc2m::obs
