// Allocation explanations: rejection chains and headroom, built on the
// decision log.
//
// explain_solve() runs one strategy on one taskset with a DecisionLogScope
// open and post-processes the event stream plus the final allocation into
// an ExplainReport:
//
//  - a per-VM *rejection chain* when the verdict is unschedulable: for
//    every VM the binding constraint (the most specific rejecting event —
//    an oversized VCPU beats a generic capacity screen) and the numeric
//    margin by which it was missed, with a human-readable detail line
//    ("no (c,b) cell with Θ≤Π at 4 ways; best cell short by 0.18 budget");
//  - a per-core *headroom report* when the verdict is schedulable: the
//    utilization slack, and how many cache ways / bandwidth partitions the
//    core could return to the spare pools while staying schedulable — the
//    counterfactual data an online admission service serves;
//  - the raw event stream (bounded; events_dropped counts truncation).
//
// The report serializes as versioned JSON ("vc2m-explain-report/1") through
// the same strict obs/json layer as the bench reports, reads back for
// round-trip validation, and renders as text for `vc2m explain`.
//
// Recording never perturbs the solve: explain_solve's result is
// bit-identical to core::solve without a scope (tests/test_explain.cpp pins
// this against tests/golden/engine.golden).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "obs/decision_log.h"

namespace vc2m::obs {

/// Headroom of one allocated core at its final (cache, bw) partitions.
struct CoreHeadroom {
  unsigned core = 0;
  unsigned cache = 0;       ///< allocated cache partitions
  unsigned bw = 0;          ///< allocated bandwidth partitions
  std::size_t vcpus = 0;    ///< VCPUs mapped here
  double utilization = 0;   ///< Σ Θ/Π at (cache, bw)
  double slack = 0;         ///< 1 − utilization
  /// Partitions this core could hand back while every shrunken allocation
  /// stays schedulable (each resource probed independently, one partition
  /// at a time, down to the grid minimum).
  unsigned reclaimable_cache = 0;
  unsigned reclaimable_bw = 0;
};

struct HeadroomReport {
  std::vector<CoreHeadroom> cores;
  unsigned spare_cache = 0;  ///< pool partitions no core was granted
  unsigned spare_bw = 0;
};

/// Why one VM could not be placed: the binding constraint and its margin.
struct VmRejection {
  int vm = -1;
  DecisionConstraint constraint = DecisionConstraint::kNone;
  double margin = 0;    ///< shortfall in the constraint's own unit
  std::string detail;   ///< one human-readable sentence
};

struct ExplainReport {
  std::string schema = "vc2m-explain-report/1";
  std::string strategy;  ///< registry key
  std::string git_rev;
  std::map<std::string, std::string> config;
  bool schedulable = false;
  unsigned cores_used = 0;
  HeadroomReport headroom;
  std::vector<VmRejection> rejections;  ///< empty when schedulable
  std::vector<DecisionEvent> events;
  std::uint64_t events_dropped = 0;
};

/// Solve with decision recording and build the report. `out_result`, when
/// non-null, receives the solve result (bit-identical to an unrecorded
/// core::solve with the same inputs and RNG state).
ExplainReport explain_solve(const core::Strategy& strategy,
                            const model::Taskset& tasks,
                            const model::PlatformSpec& platform,
                            const core::SolveConfig& cfg, util::Rng& rng,
                            core::SolveResult* out_result = nullptr);

/// Post-process an existing capture: derive the rejection chains (per VM in
/// `tasks`) and headroom from a decision log and its solve result. This is
/// what explain_solve uses; exposed for callers that already hold a log
/// (e.g. an admission service recording its own scopes).
ExplainReport build_explain_report(const DecisionLog& log,
                                   const core::SolveResult& result,
                                   const model::Taskset& tasks,
                                   const model::PlatformSpec& platform);

void write_explain_report(std::ostream& os, const ExplainReport& r);
void write_explain_report_file(const std::string& path,
                               const ExplainReport& r);

/// Throws util::Error on malformed JSON, duplicate keys, non-finite
/// numbers, unknown enum names, or a schema this reader does not speak.
ExplainReport read_explain_report(std::istream& is);
ExplainReport read_explain_report_file(const std::string& path);

/// Human rendering for `vc2m explain`: verdict, rejection chains, headroom
/// table. `show_events` appends one describe() line per recorded event.
void render_explain(std::ostream& os, const ExplainReport& r,
                    bool show_events = false);

}  // namespace vc2m::obs
