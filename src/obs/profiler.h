// Deterministic merge + rendering for util::PhaseProfiler trees.
//
// The util layer owns the raw per-thread trees (src/util/phase_profiler.h)
// so the allocator can carry span markers without linking obs; this module
// folds those trees into one name-sorted PhaseStats tree whose *structure
// and counts* are identical regardless of how work was spread over
// ThreadPool workers — only the wall-time fields vary run to run. That is
// the property the report/diff pipeline relies on: two runs of the same
// workload produce comparable phase paths.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "util/phase_profiler.h"

namespace vc2m::obs {

/// One merged phase: entry count, total wall seconds (including children)
/// and self seconds (total minus the children's totals, floored at 0).
/// Children are sorted by name, so traversal order is deterministic.
struct PhaseStats {
  std::string name;
  std::uint64_t count = 0;
  double total_sec = 0;
  double self_sec = 0;
  std::vector<PhaseStats> children;
};

/// Merge every registered per-thread tree (quiescent snapshot — call after
/// ThreadPool::wait()) into a single root. The root is an unnamed synthetic
/// node whose children are the top-level phases.
PhaseStats merged_profile();

/// Merge an explicit set of trees (for tests and saved snapshots).
PhaseStats merge_trees(
    const std::vector<std::shared_ptr<const util::PhaseNode>>& trees);

/// Render the tree as an indented table:
///   phase                              count    total(s)     self(s)
///   experiment                             1      1.2340      0.0010
///     sweep                                1      1.2000      0.2000
/// Wall-time columns are fixed 4-decimal seconds.
void write_profile(std::ostream& os, const PhaseStats& root);

/// Depth-first flatten to "a/b/c"-style paths (root's synthetic node is
/// skipped). Used by the bench report writer and perfdiff.
struct FlatPhase {
  std::string path;
  std::uint64_t count = 0;
  double total_sec = 0;
  double self_sec = 0;
};
std::vector<FlatPhase> flatten_profile(const PhaseStats& root);

}  // namespace vc2m::obs
