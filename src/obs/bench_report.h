// Machine-readable bench reports (`BENCH_*.json`) and the perf-diff gate.
//
// Every bench binary (and `vc2m experiment --profile`) can serialise one
// BenchReport: what ran (name, git rev, config strings), how hard the
// allocator worked (AllocCounters), where the wall time went (merged
// phase-profiler tree), latency distributions (histogram quantiles) and
// thread-pool telemetry. The JSON schema is versioned
// ("vc2m-bench-report/1") and read back by `vc2m perfdiff`, which compares
// two reports per-phase and per-counter and exits nonzero on regression —
// the gate scripts/check.sh runs on every bench smoke.
//
// The reader is a small recursive-descent JSON parser (obs/json.h, no
// third-party dependency); it accepts exactly the documents the writer
// produces plus ordinary whitespace variations, and rejects duplicate
// object keys and non-finite numbers with a byte-offset error instead of
// silently accepting a corrupted report.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/profiler.h"
#include "util/instrument.h"
#include "util/log_histogram.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace vc2m::obs {

/// Fixed-quantile summary of a latency distribution — enough for the diff
/// gate without shipping raw buckets.
struct HistogramSummary {
  std::uint64_t count = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p95 = 0;
  double p99 = 0;

  static HistogramSummary of(const util::LogHistogram& h);
  static HistogramSummary of(const util::SampleStats& s);
};

/// Thread-pool telemetry as report data (idle time in seconds).
struct PoolSummary {
  struct Worker {
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
    double idle_sec = 0;
    std::uint64_t max_queue = 0;
  };
  std::vector<Worker> workers;

  bool empty() const { return workers.empty(); }
  static PoolSummary of(const util::PoolTelemetry& t);
};

/// One bench run, ready to serialise. `phases` is the merged profile root
/// (synthetic unnamed node; see obs/profiler.h).
struct BenchReport {
  std::string schema = "vc2m-bench-report/1";
  std::string name;
  std::string git_rev;
  std::map<std::string, std::string> config;
  std::map<std::string, double> counters;
  PhaseStats phases;
  std::map<std::string, HistogramSummary> histograms;
  PoolSummary pool;
};

/// The git revision baked in at configure time ("unknown" outside a
/// checkout).
std::string build_git_rev();

/// Flatten an AllocCounters into the report's counter map (names match the
/// struct fields).
void set_counters(BenchReport& r, const util::AllocCounters& c);

void write_bench_report(std::ostream& os, const BenchReport& r);
void write_bench_report_file(const std::string& path, const BenchReport& r);

/// Throws util::Error on malformed JSON or a schema the reader does not
/// understand.
BenchReport read_bench_report(std::istream& is);
BenchReport read_bench_report_file(const std::string& path);

struct PerfDiffOptions {
  double max_regress = 0.10;    ///< allowed fractional growth (0.10 = +10%)
  double min_abs_sec = 1e-4;    ///< ignore time deltas below this (noise)
  double min_abs_count = 1.0;   ///< ignore counter deltas below this
};

struct PerfDiffEntry {
  std::string kind;   ///< "phase", "counter", "histogram", "pool"
  std::string key;    ///< phase path / counter name / histogram.quantile
  double base = 0;
  double current = 0;
  bool regression = false;
};

struct PerfDiffResult {
  std::vector<PerfDiffEntry> entries;   ///< every compared quantity
  std::vector<std::string> notes;       ///< keys present on one side only
  bool has_regression() const {
    for (const auto& e : entries)
      if (e.regression) return true;
    return false;
  }
};

/// Compare `current` against `base`. A quantity regresses when it grows by
/// more than max_regress relative AND more than the absolute floor — small
/// absolute jitter on a near-zero phase must not fail a gate. Counters
/// where more is better (cache hits, admissions passed) are skipped.
PerfDiffResult diff_reports(const BenchReport& base, const BenchReport& current,
                            const PerfDiffOptions& opt = {});

/// Human-readable rendering of a diff (regressions flagged with "REGRESS").
void write_perfdiff(std::ostream& os, const PerfDiffResult& d);

}  // namespace vc2m::obs
