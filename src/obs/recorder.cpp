#include "obs/recorder.h"

#include <algorithm>

#include "sim/faults.h"

namespace vc2m::obs {

namespace {

std::string task_metric(std::size_t i, const char* what) {
  return "task." + std::to_string(i) + "." + what;
}
std::string vcpu_metric(std::size_t j, const char* what) {
  return "vcpu." + std::to_string(j) + "." + what;
}
std::string core_metric(std::size_t k, const char* what) {
  return "core." + std::to_string(k) + "." + what;
}

}  // namespace

const std::vector<double>& ratio_bounds() {
  static const std::vector<double> kBounds = {
      0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.25, 1.5, 2.0, 5.0};
  return kBounds;
}

void MetricsRecorder::on_job_complete(std::size_t task, util::Time response,
                                      util::Time period, bool missed) {
  const double ratio = period.is_zero() ? 0.0 : response.ratio(period);
  reg_.histogram(task_metric(task, "response_ratio"), ratio_bounds())
      .add(ratio);
  reg_.histogram("sim.response_ratio", ratio_bounds()).add(ratio);
  if (missed) reg_.counter(task_metric(task, "misses")).inc();
}

void MetricsRecorder::on_vcpu_period_end(std::size_t vcpu,
                                         util::Time consumed,
                                         util::Time budget, bool exhausted) {
  const double fraction =
      budget.is_zero() ? 0.0 : consumed.ratio(budget);
  reg_.histogram(vcpu_metric(vcpu, "budget_fraction"), ratio_bounds())
      .add(fraction);
  if (exhausted) reg_.counter(vcpu_metric(vcpu, "overruns")).inc();
}

void MetricsRecorder::on_throttle_end(std::size_t core,
                                      util::Time duration) {
  reg_.counter(core_metric(core, "throttles")).inc();
  reg_.counter(core_metric(core, "throttled_ns"))
      .inc(static_cast<std::uint64_t>(duration.raw_ns()));
}

void MetricsRecorder::on_fault_injected(sim::FaultKind kind) {
  reg_.counter("fault." + sim::to_string(kind)).inc();
  reg_.counter("sim.faults_injected").inc();
}

void MetricsRecorder::on_job_killed(std::size_t task) {
  reg_.counter(task_metric(task, "killed")).inc();
  reg_.counter("enforce.jobs_killed").inc();
}

void MetricsRecorder::on_job_deferred(std::size_t task) {
  reg_.counter(task_metric(task, "deferred")).inc();
  reg_.counter("enforce.jobs_deferred").inc();
}

void MetricsRecorder::on_task_suspended(std::size_t task) {
  (void)task;
  reg_.counter("enforce.task_suspensions").inc();
}

void MetricsRecorder::on_task_resumed(std::size_t task) {
  (void)task;
  reg_.counter("enforce.task_resumes").inc();
}

void MetricsRecorder::on_vcpu_budget_overrun(std::size_t vcpu,
                                             util::Time overdraw) {
  (void)overdraw;
  reg_.counter(vcpu_metric(vcpu, "budget_overruns")).inc();
  reg_.counter("enforce.vcpu_budget_overruns").inc();
}

void MetricsRecorder::finalize(const sim::SimStats& stats,
                               util::Time duration) {
  for (std::size_t k = 0; k < stats.core_busy_fraction.size(); ++k) {
    const double busy = stats.core_busy_fraction[k];
    const double throttled =
        duration.is_zero() || k >= stats.core_throttled_time.size()
            ? 0.0
            : stats.core_throttled_time[k].ratio(duration);
    reg_.gauge(core_metric(k, "busy_fraction")).set(busy);
    reg_.gauge(core_metric(k, "throttled_fraction")).set(throttled);
    reg_.gauge(core_metric(k, "idle_fraction"))
        .set(std::max(0.0, 1.0 - busy - throttled));
  }
  reg_.counter("sim.jobs_released").inc(stats.jobs_released);
  reg_.counter("sim.jobs_completed").inc(stats.jobs_completed);
  reg_.counter("sim.deadline_misses").inc(stats.deadline_misses);
  reg_.counter("sim.vcpu_context_switches").inc(stats.vcpu_context_switches);
  reg_.counter("sim.task_dispatches").inc(stats.task_dispatches);
  reg_.counter("sim.throttles").inc(stats.throttles);
  reg_.counter("sim.bw_refills").inc(stats.refills);
  reg_.counter("sim.jobs_killed").inc(stats.jobs_killed);
  reg_.counter("sim.jobs_deferred").inc(stats.jobs_deferred);
  reg_.counter("sim.task_suspensions").inc(stats.task_suspensions);
  reg_.counter("sim.vcpu_budget_overruns").inc(stats.vcpu_budget_overruns);
  reg_.gauge("sim.max_tardiness_ms").set(stats.max_tardiness.to_ms());
}

void record_alloc_counters(MetricsRegistry& registry,
                           const util::AllocCounters& counters) {
  registry.counter("alloc.kmeans_runs").inc(counters.kmeans_runs);
  registry.counter("alloc.kmeans_iterations").inc(counters.kmeans_iterations);
  registry.gauge("alloc.kmeans_final_shift").set(counters.kmeans_final_shift);
  registry.counter("alloc.admission_tests").inc(counters.admission_tests);
  registry.counter("alloc.admission_passed").inc(counters.admission_passed);
  registry.counter("alloc.dbf_evaluations").inc(counters.dbf_evaluations);
  registry.counter("alloc.budget_evaluations").inc(counters.budget_evaluations);
  registry.counter("alloc.budget_cache_hits").inc(counters.budget_cache_hits);
  registry.counter("alloc.load_cache_hits").inc(counters.load_cache_hits);
  registry.counter("alloc.arena_bytes").inc(counters.arena_bytes);
  registry.counter("alloc.soa_rebuilds").inc(counters.soa_rebuilds);
  registry.counter("alloc.inner_tasks").inc(counters.inner_tasks);
  registry.counter("alloc.candidate_packings").inc(counters.candidate_packings);
  registry.counter("alloc.partition_grants").inc(counters.partition_grants);
  registry.counter("alloc.vcpu_migrations").inc(counters.vcpu_migrations);
  registry.gauge("alloc.vm_alloc_seconds").set(counters.vm_alloc_seconds);
  registry.gauge("alloc.hv_alloc_seconds").set(counters.hv_alloc_seconds);
}

}  // namespace vc2m::obs
