// Metrics registry: counters, gauges and fixed-bucket histograms.
//
// The registry is the one sink every measurement in vC2M reports through —
// simulator statistics, per-job response-time ratios, regulator activity,
// allocator search effort. Metrics are created on first use, addressed by
// name, and snapshot in deterministic (lexicographic) order so reports and
// golden tests are stable. Not thread-safe: the simulator and allocators
// are single-threaded, and a registry belongs to one run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/error.h"

namespace vc2m::obs {

class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// finite buckets; one overflow bucket catches everything above the last
/// edge. Tracks count/sum/min/max alongside the bucket counts.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void add(double x);

  std::size_t num_buckets() const { return counts_.size(); }
  /// Count in bucket i; bucket i covers (bounds[i-1], bounds[i]], the last
  /// bucket is the overflow (> bounds.back()).
  std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  const std::vector<double>& bounds() const { return bounds_; }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }

  /// Nearest-rank quantile estimate from the bucket counts (upper edge of
  /// the bucket holding the q-quantile sample); q in [0, 1].
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// A flattened view of one metric for reporting.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind;
  double value = 0;           ///< counter/gauge value; histogram mean
  std::uint64_t count = 0;    ///< histogram sample count
  double min = 0, max = 0;    ///< histogram extrema
  double p50 = 0, p95 = 0, p99 = 0;  ///< histogram quantile estimates
};

class MetricsRegistry {
 public:
  /// Get-or-create. A name identifies exactly one metric kind; reusing a
  /// name with a different kind throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// All metrics, name-sorted (std::map order), counters first within a
  /// name collision never occurring by construction.
  std::vector<MetricSample> snapshot() const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  void check_unique(const std::string& name, int self) const;

  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace vc2m::obs
