// Bounded-memory log-bucketed histogram (HDR style).
//
// SampleStats keeps every sample, which is right for the overhead tables
// but wrong where sample counts explode (per-job latencies over a big
// sweep, per-solve wall times, pool queue/steal telemetry). LogHistogram
// buckets positive values geometrically — `sub_per_octave` buckets per
// power of two — so memory is a fixed ~16 KB regardless of sample count
// and any quantile estimate is within one bucket ratio (2^(1/sub)) of a
// true sample. Histograms with identical configs merge by adding bucket
// counts, which is associative and commutative, so per-worker histograms
// reduce to one deterministic aggregate in any order.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.h"

namespace vc2m::util {

class LogHistogram {
 public:
  /// Bucket layout: `sub_bits` gives 2^sub_bits buckets per octave
  /// (powers of two); values outside [2^min_exp2, 2^max_exp2) clamp into
  /// the edge buckets, values <= 0 (and non-finite) land in a dedicated
  /// bucket reported as the observed minimum.
  struct Config {
    int sub_bits = 5;    ///< 32 buckets/octave → ~2.2% bucket ratio
    int min_exp2 = -30;  ///< ~1e-9: below any second-scale measurement
    int max_exp2 = 34;   ///< ~1.7e10: above any plausible sample

    bool operator==(const Config& o) const {
      return sub_bits == o.sub_bits && min_exp2 == o.min_exp2 &&
             max_exp2 == o.max_exp2;
    }
  };

  // Two constructors instead of `Config cfg = {}`: GCC cannot use a nested
  // class's default member initializers in a default argument of the
  // enclosing class (PR 88165).
  LogHistogram() : LogHistogram(Config{}) {}
  explicit LogHistogram(Config cfg) : cfg_(cfg) {
    VC2M_CHECK_MSG(cfg_.sub_bits >= 0 && cfg_.sub_bits <= 10,
                   "LogHistogram sub_bits out of range");
    VC2M_CHECK_MSG(cfg_.min_exp2 < cfg_.max_exp2,
                   "LogHistogram needs min_exp2 < max_exp2");
    counts_.assign(static_cast<std::size_t>(cfg_.max_exp2 - cfg_.min_exp2)
                       << cfg_.sub_bits,
                   0);
  }

  void add(double x, std::uint64_t weight = 1) {
    if (weight == 0) return;
    if (count_ == 0) {
      min_ = max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
    count_ += weight;
    sum_ += x * static_cast<double>(weight);
    if (!(x > 0) || !std::isfinite(x)) {
      nonpositive_ += weight;
      return;
    }
    counts_[bucket_index(x)] += weight;
  }

  /// Add every bucket of `o` into this histogram; configs must match.
  void merge(const LogHistogram& o) {
    VC2M_CHECK_MSG(cfg_ == o.cfg_,
                   "merging LogHistograms with different bucket layouts");
    if (o.count_ == 0) return;
    if (count_ == 0) {
      min_ = o.min_;
      max_ = o.max_;
    } else {
      min_ = std::min(min_, o.min_);
      max_ = std::max(max_, o.max_);
    }
    count_ += o.count_;
    sum_ += o.sum_;
    nonpositive_ += o.nonpositive_;
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
  }

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0;
  }
  double min() const {
    VC2M_CHECK(!empty());
    return min_;
  }
  double max() const {
    VC2M_CHECK(!empty());
    return max_;
  }

  /// Nearest-rank quantile estimate, q in [0, 1]: the geometric midpoint
  /// of the bucket holding the q-quantile sample, clamped into the
  /// observed [min, max]. Within a factor 2^(1/(2*sub_per_octave)) of a
  /// true sample at that rank.
  double quantile(double q) const {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank =
        static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
    std::uint64_t cum = nonpositive_;
    if (cum >= rank) return min_;  // rank falls among the <= 0 samples
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      cum += counts_[i];
      if (cum >= rank)
        return std::clamp(bucket_midpoint(i), min_, max_);
    }
    return max_;
  }
  /// Shorthand mirroring SampleStats::p().
  double p(double q) const { return quantile(q); }

  /// Multiplicative width of one bucket: consecutive edges differ by this
  /// factor (the quantile error bound is its square root).
  double bucket_ratio() const {
    return std::exp2(1.0 / static_cast<double>(std::size_t{1} << cfg_.sub_bits));
  }

  const Config& config() const { return cfg_; }
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t nonpositive_count() const { return nonpositive_; }

  /// Full internal state, for durable checkpoints (the admission-service
  /// snapshot persists its latency histogram and must restore it exactly —
  /// re-adding bucket midpoints would round-trip through log2/exp2 and
  /// could land one bucket off). `counts` holds only the non-zero buckets
  /// as (index, count) pairs.
  struct Snapshot {
    Config cfg;
    std::uint64_t count = 0;
    std::uint64_t nonpositive = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    std::vector<std::pair<std::size_t, std::uint64_t>> counts;
  };

  Snapshot snapshot() const {
    Snapshot s;
    s.cfg = cfg_;
    s.count = count_;
    s.nonpositive = nonpositive_;
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
    for (std::size_t i = 0; i < counts_.size(); ++i)
      if (counts_[i]) s.counts.emplace_back(i, counts_[i]);
    return s;
  }

  static LogHistogram from_snapshot(const Snapshot& s) {
    LogHistogram h(s.cfg);
    h.count_ = s.count;
    h.nonpositive_ = s.nonpositive;
    h.sum_ = s.sum;
    h.min_ = s.min;
    h.max_ = s.max;
    for (const auto& [i, c] : s.counts) {
      VC2M_CHECK_MSG(i < h.counts_.size(),
                     "LogHistogram snapshot bucket index out of range");
      h.counts_[i] = c;
    }
    return h;
  }

 private:
  std::size_t bucket_index(double x) const {
    const double sub = static_cast<double>(std::size_t{1} << cfg_.sub_bits);
    const auto idx = static_cast<std::int64_t>(
        std::floor(std::log2(x) * sub) -
        static_cast<std::int64_t>(cfg_.min_exp2) * static_cast<std::int64_t>(sub));
    return static_cast<std::size_t>(std::clamp<std::int64_t>(
        idx, 0, static_cast<std::int64_t>(counts_.size()) - 1));
  }

  double bucket_midpoint(std::size_t i) const {
    const double sub = static_cast<double>(std::size_t{1} << cfg_.sub_bits);
    return std::exp2((static_cast<double>(i) + 0.5) / sub +
                     static_cast<double>(cfg_.min_exp2));
  }

  Config cfg_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t nonpositive_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace vc2m::util
