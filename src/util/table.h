// Console table and CSV rendering for bench binaries.
//
// Every bench prints (a) a human-readable aligned table mirroring the
// paper's table/figure and (b) optionally a CSV file for replotting.
#pragma once

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.h"

namespace vc2m::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Row builder: accepts strings and arithmetic values (formatted with
  /// `precision` decimal places).
  template <typename... Ts>
  void add_row(const Ts&... cells) {
    std::vector<std::string> row;
    row.reserve(sizeof...(cells));
    (row.push_back(format(cells)), ...);
    VC2M_CHECK_MSG(row.size() == header_.size(),
                   "row width " << row.size() << " != header width "
                                << header_.size());
    rows_.push_back(std::move(row));
  }

  /// Row builder from pre-formatted cells.
  void add_row_vec(std::vector<std::string> row) {
    VC2M_CHECK_MSG(row.size() == header_.size(),
                   "row width " << row.size() << " != header width "
                                << header_.size());
    rows_.push_back(std::move(row));
  }

  void set_precision(int p) { precision_ = p; }

  void print(std::ostream& os, const std::string& title = "") const {
    if (!title.empty()) os << "## " << title << "\n";
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c)
        os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
           << row[c];
      os << '\n';
    };
    print_row(header_);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c)
      rule += std::string(widths[c], '-') + (c + 1 < widths.size() ? "  " : "");
    os << rule << '\n';
    for (const auto& row : rows_) print_row(row);
  }

  void write_csv(const std::string& path) const {
    std::ofstream f(path);
    VC2M_CHECK_MSG(f.good(), "cannot open " << path);
    auto write_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c)
        f << (c == 0 ? "" : ",") << row[c];
      f << '\n';
    };
    write_row(header_);
    for (const auto& row : rows_) write_row(row);
  }

 private:
  std::string format(const std::string& s) const { return s; }
  std::string format(const char* s) const { return s; }
  template <typename T>
  std::string format(const T& v) const {
    std::ostringstream os;
    if constexpr (std::is_integral_v<T>) {
      os << v;
    } else {
      os << std::fixed << std::setprecision(precision_) << v;
    }
    return os.str();
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  int precision_ = 3;
};

}  // namespace vc2m::util
