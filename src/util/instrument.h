// Lightweight allocator instrumentation counters.
//
// The analysis and allocation layers increment these counters while a
// collection scope is active (solve(), admit_vm(), the benches); with no
// scope the hooks are a single thread-local pointer test, so the hot paths
// stay effectively free when nobody is measuring. The observability layer
// (src/obs) converts a populated AllocCounters into registry metrics.
#pragma once

#include <cstdint>

namespace vc2m::util {

/// What the allocator actually did for one solve: clustering effort,
/// admission tests, demand-bound evaluations, search-space coverage and
/// per-phase wall time. All counters are cumulative over the scope.
struct AllocCounters {
  // KMeans clustering (VM level and hypervisor level).
  std::uint64_t kmeans_runs = 0;
  std::uint64_t kmeans_iterations = 0;
  /// Total centroid movement (squared distance) of each run's final
  /// update step — the convergence delta the iteration cap cuts off.
  double kmeans_final_shift = 0;

  // Schedulability / admission testing.
  std::uint64_t admission_tests = 0;    ///< core_schedulable() calls
  std::uint64_t admission_passed = 0;
  std::uint64_t dbf_evaluations = 0;    ///< dbf(t) evaluations

  // Memoization (analysis::AnalysisContext and core::CoreLoad).
  std::uint64_t budget_evaluations = 0;  ///< min-budget searches performed
  std::uint64_t budget_cache_hits = 0;   ///< budgets served from the memo
  std::uint64_t load_cache_hits = 0;     ///< CoreLoad Σ Θ/Π served cached

  // Hypervisor-level search coverage.
  std::uint64_t candidate_packings = 0;  ///< Phase-1 packings explored
  std::uint64_t partition_grants = 0;    ///< Phase-2 cache/BW grants
  std::uint64_t vcpu_migrations = 0;     ///< Phase-3 moves

  // SoA / arena / intra-solve-parallel kernels (analysis fast path). All
  // three are deterministic at any --jobs / --inner-jobs: arena_bytes counts
  // rounded allocation *requests* (a pure function of the work, unlike
  // high-water marks), soa_rebuilds counts checkpoint/SoA cache entries
  // built, inner_tasks counts min-budget cells processed by the batch
  // engine whether they ran serially or striped over the pool.
  std::uint64_t arena_bytes = 0;    ///< bytes served by scratch arenas
  std::uint64_t soa_rebuilds = 0;   ///< checkpoint/SoA cache builds
  std::uint64_t inner_tasks = 0;    ///< batched min-budget cells computed

  // Per-phase wall time (seconds).
  double vm_alloc_seconds = 0;
  double hv_alloc_seconds = 0;

  void merge(const AllocCounters& o) {
    kmeans_runs += o.kmeans_runs;
    kmeans_iterations += o.kmeans_iterations;
    kmeans_final_shift += o.kmeans_final_shift;
    admission_tests += o.admission_tests;
    admission_passed += o.admission_passed;
    dbf_evaluations += o.dbf_evaluations;
    budget_evaluations += o.budget_evaluations;
    budget_cache_hits += o.budget_cache_hits;
    load_cache_hits += o.load_cache_hits;
    candidate_packings += o.candidate_packings;
    partition_grants += o.partition_grants;
    vcpu_migrations += o.vcpu_migrations;
    arena_bytes += o.arena_bytes;
    soa_rebuilds += o.soa_rebuilds;
    inner_tasks += o.inner_tasks;
    vm_alloc_seconds += o.vm_alloc_seconds;
    hv_alloc_seconds += o.hv_alloc_seconds;
  }
};

namespace detail {
inline thread_local AllocCounters* g_alloc_counters = nullptr;
}

/// The active collector, or nullptr when no scope is open. Instrumented
/// code uses `if (auto* c = alloc_counters()) ++c->...;`.
inline AllocCounters* alloc_counters() { return detail::g_alloc_counters; }

/// RAII collection scope. Scopes nest: an inner scope shadows the outer
/// one and merges its counts into it on destruction, so a caller measuring
/// a whole experiment still sees the totals of nested solves.
class AllocCounterScope {
 public:
  AllocCounterScope() : prev_(detail::g_alloc_counters) {
    detail::g_alloc_counters = &counters_;
  }
  ~AllocCounterScope() {
    detail::g_alloc_counters = prev_;
    if (prev_) prev_->merge(counters_);
  }
  AllocCounterScope(const AllocCounterScope&) = delete;
  AllocCounterScope& operator=(const AllocCounterScope&) = delete;

  const AllocCounters& counters() const { return counters_; }

 private:
  AllocCounters counters_;
  AllocCounters* prev_;
};

}  // namespace vc2m::util
