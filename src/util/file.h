// Output-file helpers shared by every artifact writer (traces, bench /
// explain / scenario reports, taskset CSVs).
//
// A bare `std::ofstream(path)` fails silently in two ways the CLI must not:
// the constructor only sets failbit (a caller that forgets to test it
// "writes" to a closed stream), and buffered write errors (ENOSPC, EIO)
// surface no earlier than the destructor's flush, where they vanish. These
// helpers turn both into util::Error with the OS reason attached, so
// `vc2m simulate --trace no/such/dir/out.json` fails loudly with a nonzero
// exit instead of printing a success line.
#pragma once

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>

#include "util/error.h"

namespace vc2m::util {

/// Open `path` for writing (truncating) or throw util::Error naming the
/// artifact, the path, and strerror(errno) — e.g.
/// "cannot open trace file 'no/dir/t.json': No such file or directory".
inline std::ofstream open_output_file(const std::string& path,
                                      const std::string& what) {
  errno = 0;
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f.good()) {
    const int err = errno;
    throw Error("cannot open " + what + " '" + path + "'" +
                (err ? std::string(": ") + std::strerror(err) : ""));
  }
  return f;
}

/// Flush `f` and throw util::Error if any write (including the flush)
/// failed — the ENOSPC case a destructor-time flush would swallow.
inline void close_output_file(std::ofstream& f, const std::string& path,
                              const std::string& what) {
  errno = 0;
  f.flush();
  if (!f.good()) {
    const int err = errno;
    throw Error("error writing " + what + " '" + path + "'" +
                (err ? std::string(": ") + std::strerror(err) : ""));
  }
}

/// Fail-fast probe used by CLI commands before long-running work: verify
/// `path` can be created/written (open in append mode so an existing file
/// is not clobbered by the probe). Leaves the filesystem as it found it:
/// when the probe itself had to create the file, the empty file is removed
/// again, so a command that fails after the probe (e.g. a scenario load
/// error) leaves no stray artifact behind. Throws util::Error with the OS
/// reason.
inline void ensure_output_path_writable(const std::string& path,
                                        const std::string& what) {
  std::error_code ec;
  const bool existed = std::filesystem::exists(path, ec);
  errno = 0;
  std::ofstream f(path, std::ios::binary | std::ios::app);
  if (!f.good()) {
    const int err = errno;
    throw Error("cannot open " + what + " '" + path + "'" +
                (err ? std::string(": ") + std::strerror(err) : ""));
  }
  f.close();
  if (!existed) std::filesystem::remove(path, ec);
}

}  // namespace vc2m::util
