// Fixed-size work-stealing thread pool.
//
// The pool owns N worker threads, each with its own deque. submit()
// distributes tasks round-robin over the deques; a worker pops its own
// deque LIFO (back) for cache locality and, when empty, steals FIFO
// (front) from the others so long chains of slow tasks spread out.
// wait() blocks the caller until every submitted task has finished and
// rethrows the first exception any task raised, so VC2M_CHECK failures
// inside pooled work surface at the call site exactly as they would in
// a serial loop.
//
// The pool makes no ordering promises: callers that need deterministic
// results must make each task a pure function of pre-computed inputs
// writing to its own output slot (see core::run_schedulability_experiment
// and docs/parallelism.md for the contract this enables).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vc2m::util {

/// Snapshot of the pool's per-worker execution telemetry. Counters are
/// monotone over the pool's lifetime (never reset by wait()); sample at
/// two quiescent points and subtract to attribute work to a region.
struct PoolTelemetry {
  struct Worker {
    std::uint64_t executed = 0;  ///< tasks this worker ran to completion
    std::uint64_t steals = 0;    ///< tasks it took from another deque
    std::int64_t idle_ns = 0;    ///< wall time spent parked on the work cv
    std::size_t max_queue = 0;   ///< high-water mark of its own deque
  };
  std::vector<Worker> workers;

  std::uint64_t total_executed() const {
    std::uint64_t n = 0;
    for (const auto& w : workers) n += w.executed;
    return n;
  }
  std::uint64_t total_steals() const {
    std::uint64_t n = 0;
    for (const auto& w : workers) n += w.steals;
    return n;
  }
  std::int64_t total_idle_ns() const {
    std::int64_t n = 0;
    for (const auto& w : workers) n += w.idle_ns;
    return n;
  }
  std::size_t max_queue_depth() const {
    std::size_t n = 0;
    for (const auto& w : workers) n = std::max(n, w.max_queue);
    return n;
  }
};

class ThreadPool {
 public:
  /// Spawn `workers` threads; 0 means hardware_workers().
  explicit ThreadPool(unsigned workers = 0);

  /// Joins the workers. Tasks still queued are drained first; destroying
  /// a pool while another thread is submitting or waiting is undefined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (fixed for the pool's lifetime).
  unsigned workers() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue one task. Tasks may submit further tasks; they must not call
  /// wait() (the pool does not run queued work on a blocked caller).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. If any task threw,
  /// rethrows the first such exception (later ones are dropped) and clears
  /// it, leaving the pool reusable.
  void wait();

  /// Run body(i) for every i in [0, n), spread over the workers in chunks
  /// of `grain` indices (0 picks a grain that yields several chunks per
  /// worker). Calls wait(), so it also drains — and propagates errors
  /// from — any tasks submitted earlier.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 0);

  /// max(1, std::thread::hardware_concurrency()).
  static unsigned hardware_workers();

  /// Per-worker execution counters (see PoolTelemetry). The counters are
  /// updated with relaxed atomics, so a snapshot taken while tasks are
  /// running is approximate; snapshot after wait() for exact numbers.
  PoolTelemetry telemetry() const;

  /// Tasks submitted but not yet finished (the value wait() drains to 0).
  std::size_t pending() const;

 private:
  struct WorkerState {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
    // Telemetry: written by the owning worker (executed/steals/idle_ns)
    // or the submitter (max_queue), read by telemetry(). Relaxed is fine —
    // these are statistics, not synchronization.
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::int64_t> idle_ns{0};
    std::atomic<std::size_t> max_queue{0};
  };

  bool try_pop(std::size_t self, std::function<void()>& out);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::thread> threads_;

  // pool_mu_ guards everything below. queued_ counts tasks pushed minus
  // tasks popped (transiently negative while a push's bookkeeping races a
  // steal); in_flight_ counts submitted minus finished.
  mutable std::mutex pool_mu_;  ///< mutable so pending() can stay const
  std::condition_variable work_cv_;  ///< workers sleep here when idle
  std::condition_variable idle_cv_;  ///< wait() sleeps here
  std::ptrdiff_t queued_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t next_ = 0;  ///< round-robin submit cursor
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace vc2m::util
