// Deterministic random number generation.
//
// Every randomized component in vC2M (workload generation, KMeans seeding,
// Phase-1 cluster permutations) takes an explicit `Rng&` so that experiments
// are reproducible from a single seed. The generator is xoshiro256++ seeded
// via SplitMix64, which is fast, high quality, and stable across platforms
// (unlike std::mt19937 + std::uniform_* whose outputs are unspecified).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/error.h"

namespace vc2m::util {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// xoshiro256++ next().
  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    // 53 random mantissa bits.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    VC2M_CHECK(lo <= hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
    // Lemire's unbiased bounded generation (rejection on the low word).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < range) {
      const std::uint64_t floor = (0 - range) % range;
      while (l < floor) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * range;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    VC2M_CHECK(n > 0);
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  /// A random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n) {
    std::vector<std::size_t> p(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = i;
    shuffle(p);
    return p;
  }

  /// Derive an independent child generator (for per-taskset streams).
  Rng fork() { return Rng{(*this)()}; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace vc2m::util
