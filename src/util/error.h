// Assertion and error-reporting helpers.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace vc2m::util {

/// Thrown on violated preconditions and invariants across the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace vc2m::util

/// Precondition/invariant check that is always on (these guard algorithm
/// correctness, not hot loops; the DES and analyses rely on them in tests).
#define VC2M_CHECK(expr)                                                    \
  do {                                                                      \
    if (!(expr)) ::vc2m::util::detail::fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define VC2M_CHECK_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr))                                                         \
      ::vc2m::util::detail::fail(#expr, __FILE__, __LINE__,              \
                                 (::std::ostringstream{} << msg).str()); \
  } while (0)
