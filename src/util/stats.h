// Summary statistics used by the overhead tables and experiment reports.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/error.h"

namespace vc2m::util {

/// Accumulates samples and reports min/avg/max/stddev and percentiles.
/// Keeps all samples (overhead tables need exact percentiles over
/// bounded-size runs, so memory is not a concern) but maintains running
/// min/max/sum so the aggregate queries the bench loops hammer are O(1)
/// instead of re-scanning the vector on every call.
class SampleStats {
 public:
  void add(double x) {
    if (samples_.empty()) {
      min_ = max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
    sum_ += x;
    samples_.push_back(x);
    sorted_ = false;
    stddev_valid_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const {
    VC2M_CHECK(!empty());
    return min_;
  }
  double max() const {
    VC2M_CHECK(!empty());
    return max_;
  }
  double mean() const {
    VC2M_CHECK(!empty());
    return sum_ / static_cast<double>(samples_.size());
  }
  /// Population stddev. Cached like the sort order: the two-pass scan runs
  /// at most once between additions, so bench loops that interleave
  /// stddev()/percentile() queries over a settled sample set pay O(n) once
  /// instead of per call.
  double stddev() const {
    VC2M_CHECK(!empty());
    if (!stddev_valid_) {
      const double m = mean();
      double s = 0;
      for (double x : samples_) s += (x - m) * (x - m);
      stddev_ = std::sqrt(s / static_cast<double>(samples_.size()));
      stddev_valid_ = true;
    }
    return stddev_;
  }
  /// p in [0, 1]; linear-interpolated percentile. The samples are sorted
  /// at most once between additions, so a batch of percentile queries
  /// (p50/p95/p99 rows) pays for one sort total.
  double percentile(double p) const {
    VC2M_CHECK(!empty());
    sort();
    const double idx = p * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return samples_[lo] * (1 - frac) + samples_[hi] * frac;
  }
  /// Shorthand: s.p(0.99) reads better in table rows.
  double p(double q) const { return percentile(q); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void sort() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  mutable bool stddev_valid_ = false;
  mutable double stddev_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

/// Streaming mean/variance (Welford) for high-volume counters in the DES.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace vc2m::util
