// Chunked bump allocator for per-solve scratch.
//
// The analysis hot path (checkpoint buffers, demand curves, per-cell PTask
// views, packing work arrays) used to allocate fresh std::vectors per call;
// profiling showed the malloc/free traffic rivaling the arithmetic. An
// Arena services those requests by bumping a pointer through reusable
// chunks: allocation is a pointer add in the common case, and reset() (or a
// Scope rewind) reclaims everything at once while keeping the chunks mapped
// for the next solve — so steady-state solves do no heap allocation at all.
//
// Lifetime rules (see docs/performance.md):
//  - An Arena is single-threaded. Parallel workers use one arena each.
//  - Memory returned by allocate()/alloc_array() is valid until the next
//    reset() or the destruction of an enclosing Scope mark — never hold an
//    arena span across either.
//  - reset() keeps chunk capacity; only the destructor releases memory.
//
// When an AllocCounterScope is open, every allocation adds its rounded size
// to `arena_bytes` — a deterministic effort counter (requests are a pure
// function of the work), unlike high-water marks which depend on reuse.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/error.h"
#include "util/instrument.h"

namespace vc2m::util {

class Arena {
 public:
  /// `chunk_bytes` is the default size of each bump chunk; requests larger
  /// than it get a dedicated chunk of exactly the rounded request size
  /// (the "large-block fallback"), so any size is serviceable.
  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {
    VC2M_CHECK_MSG(chunk_bytes > 0, "arena chunk size must be positive");
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (a power of two ≤ chunk
  /// alignment). Never returns nullptr; zero-byte requests get a unique
  /// valid pointer into the current chunk.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    VC2M_CHECK_MSG(align > 0 && (align & (align - 1)) == 0,
                   "arena alignment must be a power of two");
    VC2M_CHECK_MSG(align <= kMaxAlign,
                   "arena alignment " << align << " exceeds the chunk "
                                      << "alignment " << kMaxAlign);
    const std::size_t need = round_up(bytes, align);
    if (auto* ctr = alloc_counters()) ctr->arena_bytes += need;
    while (cur_ < chunks_.size()) {
      Chunk& c = chunks_[cur_];
      const std::size_t at = round_up(c.used, align);
      if (at + need <= c.size) {
        c.used = at + need;
        bump_in_use(need);
        return c.data.get() + at;
      }
      ++cur_;
      if (cur_ < chunks_.size()) chunks_[cur_].used = 0;
    }
    // No existing chunk fits: open a new one (the large-block fallback uses
    // exactly the rounded request size so a huge request doesn't force a
    // huge default chunk).
    // operator new[] guarantees alignof(std::max_align_t), which allocate()
    // checks is an upper bound on every requested alignment.
    const std::size_t size = need > chunk_bytes_ ? need : chunk_bytes_;
    chunks_.push_back(
        Chunk{std::unique_ptr<std::byte[]>(new std::byte[size]), size, need});
    cur_ = chunks_.size() - 1;
    bump_in_use(need);
    return chunks_.back().data.get();
  }

  /// Typed array of `n` trivially-destructible Ts (uninitialized).
  template <typename T>
  std::span<T> alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return {static_cast<T*>(allocate(n * sizeof(T), alignof(T))), n};
  }

  /// Rewind to empty. Chunk capacity is kept for reuse; spans handed out
  /// before the reset are dead.
  void reset() {
    for (auto& c : chunks_) c.used = 0;
    cur_ = 0;
    in_use_ = 0;
  }

  /// RAII rewind mark: on destruction the arena forgets every allocation
  /// made after construction (chunks stay mapped). Scopes must nest.
  class Scope {
   public:
    explicit Scope(Arena& a)
        : arena_(a), chunk_(a.cur_),
          used_(a.chunks_.empty() ? 0 : a.chunks_[a.cur_].used),
          in_use_(a.in_use_) {}
    ~Scope() {
      if (arena_.chunks_.empty()) return;
      for (std::size_t i = chunk_ + 1; i < arena_.chunks_.size(); ++i)
        arena_.chunks_[i].used = 0;
      arena_.chunks_[chunk_].used = used_;
      arena_.cur_ = chunk_;
      arena_.in_use_ = in_use_;
      if (arena_.high_water_ < in_use_) arena_.high_water_ = in_use_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Arena& arena_;
    std::size_t chunk_;
    std::size_t used_;
    std::size_t in_use_;
  };

  /// Bytes currently allocated (live since the last reset/rewind).
  std::size_t in_use() const { return in_use_; }
  /// Largest in_use() ever observed.
  std::size_t high_water() const { return high_water_; }
  /// Total bytes of mapped chunk capacity.
  std::size_t capacity() const {
    std::size_t n = 0;
    for (const auto& c : chunks_) n += c.size;
    return n;
  }

  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;
  static constexpr std::size_t kMaxAlign = alignof(std::max_align_t);

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static constexpr std::size_t round_up(std::size_t v, std::size_t align) {
    return (v + align - 1) & ~(align - 1);
  }

  void bump_in_use(std::size_t need) {
    in_use_ += need;
    if (high_water_ < in_use_) high_water_ = in_use_;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
};

/// Minimal std-allocator adaptor so standard containers can draw from an
/// Arena (deallocate is a no-op; the arena reclaims on reset/rewind). The
/// arena must outlive every container using it.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& o) : arena_(o.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const {
    return arena_ == o.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace vc2m::util
