// Strong integer time type used throughout vC2M.
//
// All scheduling math (releases, deadlines, budgets, demand/supply bounds)
// is performed on integer nanoseconds so that discrete-event ordering and
// harmonic-period arithmetic are exact. Floating point appears only at the
// presentation boundary (to_ms/to_us) and in utilization ratios.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <numeric>
#include <ostream>

#include "util/error.h"

namespace vc2m::util {

/// A point in time or a span of time, in integer nanoseconds.
///
/// `Time` is deliberately a single type for both instants and durations:
/// the scheduling literature freely mixes the two (release + period,
/// deadline - now) and a separate duration type adds noise without catching
/// real bugs in this domain.
class Time {
 public:
  constexpr Time() = default;

  /// Named constructors; prefer these over the raw-ns constructor.
  static constexpr Time ns(std::int64_t v) { return Time{v}; }
  static constexpr Time us(std::int64_t v) { return Time{v * 1'000}; }
  static constexpr Time ms(std::int64_t v) { return Time{v * 1'000'000}; }
  static constexpr Time sec(std::int64_t v) { return Time{v * 1'000'000'000}; }

  /// Largest representable time; used as "never" in the event queue.
  static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }
  static constexpr Time zero() { return Time{0}; }

  constexpr std::int64_t raw_ns() const { return ns_; }
  constexpr double to_us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr auto operator<=>(Time, Time) = default;

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ns_ * k}; }
  constexpr Time& operator+=(Time o) { ns_ += o.ns_; return *this; }
  constexpr Time& operator-=(Time o) { ns_ -= o.ns_; return *this; }
  constexpr Time operator-() const { return Time{-ns_}; }

  /// Integer division: how many whole `b` fit in `a`.
  friend constexpr std::int64_t operator/(Time a, Time b) { return a.ns_ / b.ns_; }
  /// Remainder of the integer division above.
  friend constexpr Time operator%(Time a, Time b) { return Time{a.ns_ % b.ns_}; }

  /// Exact ratio as a double (utilizations, bandwidth fractions).
  constexpr double ratio(Time denom) const {
    return static_cast<double>(ns_) / static_cast<double>(denom.ns_);
  }

 private:
  constexpr explicit Time(std::int64_t v) : ns_{v} {}
  std::int64_t ns_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, Time t) {
  return os << t.raw_ns() << "ns";
}

constexpr Time min(Time a, Time b) { return a < b ? a : b; }
constexpr Time max(Time a, Time b) { return a > b ? a : b; }

/// Least common multiple of two positive periods (hyperperiod building
/// block). Adversarial period sets (large mutually-prime values) can push
/// the LCM past 64-bit range; that used to wrap silently into a bogus small
/// horizon, so the product is now checked and overflow fails loudly.
constexpr Time lcm(Time a, Time b) {
  VC2M_CHECK_MSG(a.raw_ns() > 0 && b.raw_ns() > 0,
                 "lcm requires positive periods (got " << a << ", " << b
                                                       << ")");
  const std::int64_t g = std::gcd(a.raw_ns(), b.raw_ns());
  const std::int64_t q = a.raw_ns() / g;
  VC2M_CHECK_MSG(
      q <= std::numeric_limits<std::int64_t>::max() / b.raw_ns(),
      "hyperperiod overflow: lcm(" << a << ", " << b
                                   << ") exceeds 64-bit nanoseconds — the "
                                      "periods are too close to mutually "
                                      "prime for an exact analysis horizon");
  return Time::ns(q * b.raw_ns());
}

/// Round `t` up to the next multiple of `step` (step > 0).
constexpr Time round_up(Time t, Time step) {
  const std::int64_t q = (t.raw_ns() + step.raw_ns() - 1) / step.raw_ns();
  return Time::ns(q * step.raw_ns());
}

/// True iff one of the two periods divides the other (harmonic pair).
constexpr bool harmonic_pair(Time a, Time b) {
  if (a.is_zero() || b.is_zero()) return false;
  return (a.raw_ns() % b.raw_ns() == 0) || (b.raw_ns() % a.raw_ns() == 0);
}

}  // namespace vc2m::util
