#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "util/error.h"

namespace vc2m::util {

unsigned ThreadPool::hardware_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = hardware_workers();
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    workers_.push_back(std::make_unique<WorkerState>());
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  VC2M_CHECK(task != nullptr);
  std::size_t victim;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    VC2M_CHECK_MSG(!stop_, "submit() on a pool being destroyed");
    ++in_flight_;
    victim = next_++ % workers_.size();
  }
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lk(workers_[victim]->mu);
    workers_[victim]->tasks.push_back(std::move(task));
    depth = workers_[victim]->tasks.size();
  }
  std::size_t seen = workers_[victim]->max_queue.load(std::memory_order_relaxed);
  while (depth > seen &&
         !workers_[victim]->max_queue.compare_exchange_weak(
             seen, depth, std::memory_order_relaxed)) {
  }
  // The push must land before queued_ counts it, so a worker woken by the
  // notify below always finds the task when it scans the deques.
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    ++queued_;
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  {
    WorkerState& own = *workers_[self];
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    WorkerState& victim = *workers_[(self + k) % workers_.size()];
    std::lock_guard<std::mutex> lk(victim.mu);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      workers_[self]->steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      {
        std::lock_guard<std::mutex> lk(pool_mu_);
        --queued_;
      }
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lk(pool_mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      task = nullptr;  // release captures before declaring the task done
      workers_[self]->executed.fetch_add(1, std::memory_order_relaxed);
      bool idle;
      {
        std::lock_guard<std::mutex> lk(pool_mu_);
        idle = --in_flight_ == 0;
      }
      if (idle) idle_cv_.notify_all();
    } else {
      const auto park_start = std::chrono::steady_clock::now();
      std::unique_lock<std::mutex> lk(pool_mu_);
      work_cv_.wait(lk, [&] { return stop_ || queued_ > 0; });
      workers_[self]->idle_ns.fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - park_start)
              .count(),
          std::memory_order_relaxed);
      if (stop_ && queued_ <= 0) return;
    }
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lk(pool_mu_);
  idle_cv_.wait(lk, [&] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

PoolTelemetry ThreadPool::telemetry() const {
  PoolTelemetry t;
  t.workers.reserve(workers_.size());
  for (const auto& w : workers_) {
    PoolTelemetry::Worker out;
    out.executed = w->executed.load(std::memory_order_relaxed);
    out.steals = w->steals.load(std::memory_order_relaxed);
    out.idle_ns = w->idle_ns.load(std::memory_order_relaxed);
    out.max_queue = w->max_queue.load(std::memory_order_relaxed);
    t.workers.push_back(out);
  }
  return t;
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lk(pool_mu_);
  return in_flight_;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (n == 0) return;
  if (grain == 0)
    grain = std::max<std::size_t>(1, n / (std::size_t{workers()} * 8));
  for (std::size_t lo = 0; lo < n; lo += grain) {
    const std::size_t hi = std::min(n, lo + grain);
    // body outlives the tasks (wait() below), so capture by reference.
    submit([&body, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }
  wait();
}

}  // namespace vc2m::util
