// Hierarchical wall-clock phase profiler — the span primitive.
//
// `VC2M_PROFILE_PHASE("hv_alloc")` opens an RAII span on the current
// thread; nested spans build a per-thread call tree with per-phase entry
// counts and total wall time. The primitive lives in util (like the
// AllocCounters hooks in instrument.h) so the allocation and analysis
// layers can carry markers without depending on src/obs; merging the
// per-thread trees into one deterministic report tree is obs::profiler's
// job.
//
// Cost model: profiling is off by default, and a span on the disabled
// path is one relaxed atomic load and a branch — cheap enough for markers
// inside the min-budget search. When enabled, a span is a map lookup in
// the current node's children plus two steady_clock reads.
//
// Threading contract: spans touch only their own thread's tree, so
// concurrent spans never contend. PhaseProfiler::trees() and reset() must
// run at a quiescent point (no spans open on other threads) — after
// ThreadPool::wait(), which also gives the reader a happens-before edge
// over the workers' writes. The profiler records wall time only; it never
// touches RNG streams or analysis state, so enabling it cannot perturb
// result bit-identity.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vc2m::util {

/// One node of a per-thread phase tree. `children` is name-keyed (and so
/// deterministically ordered); `total_ns` is wall time including children
/// (self time is derived at report level).
struct PhaseNode {
  std::string name;
  PhaseNode* parent = nullptr;
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::map<std::string, std::unique_ptr<PhaseNode>> children;

  PhaseNode* child(const std::string& child_name) {
    auto& slot = children[child_name];
    if (!slot) {
      slot = std::make_unique<PhaseNode>();
      slot->name = child_name;
      slot->parent = this;
    }
    return slot.get();
  }
};

namespace detail {

struct ProfilerGlobals {
  std::atomic<bool> enabled{false};
  /// Bumped by reset(); threads whose cached epoch is stale re-register a
  /// fresh tree on their next span.
  std::atomic<std::uint64_t> epoch{1};
  std::mutex mu;
  /// Every thread's root, live and finished threads alike (shared_ptr
  /// keeps a tree readable after its thread exits).
  std::vector<std::shared_ptr<PhaseNode>> trees;

  static ProfilerGlobals& instance() {
    static ProfilerGlobals g;
    return g;
  }
};

struct ProfilerThreadState {
  std::shared_ptr<PhaseNode> root;
  PhaseNode* current = nullptr;
  std::uint64_t epoch = 0;
};

inline ProfilerThreadState& profiler_thread_state() {
  thread_local ProfilerThreadState state;
  return state;
}

}  // namespace detail

class PhaseProfiler {
 public:
  static void set_enabled(bool on) {
    detail::ProfilerGlobals::instance().enabled.store(
        on, std::memory_order_relaxed);
  }
  static bool enabled() {
    return detail::ProfilerGlobals::instance().enabled.load(
        std::memory_order_relaxed);
  }

  /// Snapshot of every registered per-thread tree. Quiescent use only
  /// (see the header comment); the pointers stay valid across reset().
  static std::vector<std::shared_ptr<const PhaseNode>> trees() {
    auto& g = detail::ProfilerGlobals::instance();
    std::lock_guard<std::mutex> lk(g.mu);
    return {g.trees.begin(), g.trees.end()};
  }

  /// Drop all registered trees; threads start fresh ones on their next
  /// span. Quiescent use only.
  static void reset() {
    auto& g = detail::ProfilerGlobals::instance();
    std::lock_guard<std::mutex> lk(g.mu);
    g.trees.clear();
    g.epoch.fetch_add(1, std::memory_order_relaxed);
  }
};

/// RAII phase span; use via VC2M_PROFILE_PHASE, or construct directly
/// when the label is computed at runtime (e.g. "solve/" + key).
class PhaseSpan {
 public:
  explicit PhaseSpan(const char* name) {
    if (PhaseProfiler::enabled()) open(name);
  }
  explicit PhaseSpan(const std::string& name) {
    if (PhaseProfiler::enabled()) open(name);
  }
  ~PhaseSpan() {
    if (!node_) return;
    node_->total_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
    detail::profiler_thread_state().current = node_->parent;
  }

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  void open(const std::string& name) {
    auto& ts = detail::profiler_thread_state();
    auto& g = detail::ProfilerGlobals::instance();
    const std::uint64_t epoch = g.epoch.load(std::memory_order_relaxed);
    if (ts.epoch != epoch || !ts.root) {
      ts.root = std::make_shared<PhaseNode>();
      ts.current = ts.root.get();
      ts.epoch = epoch;
      std::lock_guard<std::mutex> lk(g.mu);
      g.trees.push_back(ts.root);
    }
    node_ = ts.current->child(name);
    ++node_->count;
    ts.current = node_;
    start_ = std::chrono::steady_clock::now();
  }

  PhaseNode* node_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

#define VC2M_PROFILE_CONCAT2(a, b) a##b
#define VC2M_PROFILE_CONCAT(a, b) VC2M_PROFILE_CONCAT2(a, b)
#define VC2M_PROFILE_PHASE(name) \
  ::vc2m::util::PhaseSpan VC2M_PROFILE_CONCAT(vc2m_phase_span_, __COUNTER__)(name)

}  // namespace vc2m::util
