// KMeans clustering over slowdown vectors.
//
// Both allocation levels group entities (tasks at VM level, VCPUs at
// hypervisor level) whose slowdown vectors are similar, so that entities
// sharing a core make similar use of the cache/BW partitions granted to it
// (§4.2, §4.3). Features are the flattened s(c,b) surfaces; distance is
// Euclidean; seeding is kmeans++ from the caller's RNG so results are
// reproducible.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace vc2m::core {

struct KMeansResult {
  /// assignment[i] = cluster of point i, in [0, k).
  std::vector<std::size_t> assignment;
  std::vector<std::vector<double>> centroids;
  unsigned iterations = 0;
};

/// Lloyd's algorithm with kmeans++ seeding. Requires 1 <= k <= points.size()
/// and all points of equal, non-zero dimension. Empty clusters are repaired
/// by stealing the point farthest from its current centroid.
KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    std::size_t k, util::Rng& rng, unsigned max_iters = 50);

/// Invert an assignment into per-cluster member lists (clusters may be
/// empty only if kmeans() was given degenerate duplicate points).
std::vector<std::vector<std::size_t>> cluster_members(
    const KMeansResult& result, std::size_t k);

/// Squared Euclidean distance (exposed for tests).
double squared_distance(const std::vector<double>& a,
                        const std::vector<double>& b);

}  // namespace vc2m::core
