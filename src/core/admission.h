// Online admission control: grow or shrink a running system without
// disturbing the VMs already placed.
//
// The paper's allocator is offline (§4); a deployed hypervisor also needs
// to admit a VM into a system that is already running. `admit_vm` places
// the new VM's VCPUs using only headroom: existing VCPUs stay on their
// cores, existing cores may *gain* cache/BW partitions from the free pools
// but never lose any (so running guarantees are untouched), and unused
// cores may be brought up. `remove_vm` releases a VM's VCPUs and returns
// its cores' now-free capacity to the pools (partitions stay with the
// cores until a later admission redistributes the free pool).
#pragma once

#include <cstddef>
#include <vector>

#include "core/hv_alloc.h"
#include "core/vm_alloc.h"
#include "model/platform.h"
#include "model/task.h"
#include "util/rng.h"

namespace vc2m::core {

struct AdmissionState {
  /// All placed VCPUs; `mapping.vcpus_on_core` indexes into this vector.
  std::vector<model::Vcpu> vcpus;
  HvAllocResult mapping;
};

struct AdmitResult {
  bool admitted = false;
  /// The updated system on success; empty on rejection (the caller keeps
  /// using its own, untouched AdmissionState — rejection is atomic).
  AdmissionState state;
  /// Echo of `vm_cfg.request_id` (the serve trace seq that triggered this
  /// decision; -1 when not request-scoped), present on success and on
  /// rejection so telemetry can correlate either outcome.
  std::int64_t request_id = -1;
};

/// Try to admit a VM (the tasks must all carry `vm_id`) into `current`.
/// New VCPUs are parameterized per `vm_cfg.analysis`, packed best-fit onto
/// the least-loaded feasible cores, with greedy partition grants from the
/// free pools when a core needs more resources; a new core is opened only
/// when no existing core fits. On failure the running system is untouched.
AdmitResult admit_vm(const AdmissionState& current,
                     const model::Taskset& vm_tasks, int vm_id,
                     const model::PlatformSpec& platform,
                     const VmAllocConfig& vm_cfg, util::Rng& rng);

/// Remove every VCPU belonging to `vm_id`. Cores keep their partition
/// allocations (still valid supersets); empty trailing cores are trimmed.
AdmissionState remove_vm(const AdmissionState& current, int vm_id);

/// Replace a running VM's workload: remove `vm_id`, then re-admit it with
/// `new_tasks` (which must all carry `vm_id`). Transactional like admit_vm:
/// on success the result holds the resized system; on rejection the result
/// is empty and the caller keeps using `current` — the original VM is never
/// lost to a failed resize. Throws util::Error when `vm_id` is not present.
AdmitResult resize_vm(const AdmissionState& current,
                      const model::Taskset& new_tasks, int vm_id,
                      const model::PlatformSpec& platform,
                      const VmAllocConfig& vm_cfg, util::Rng& rng);

}  // namespace vc2m::core
