#include "core/exact.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/core_load.h"
#include "obs/decision_log.h"
#include "util/error.h"

namespace vc2m::core {
namespace {

constexpr unsigned kInfeasible = std::numeric_limits<unsigned>::max();

/// Per-core Pareto frontier: for every cache allocation c, the minimal
/// bandwidth allocation b making the VCPU set schedulable (kInfeasible if
/// none). Monotone: more cache never needs more bandwidth.
struct Frontier {
  std::vector<unsigned> min_b;  // indexed by c - c_min
  bool feasible = false;        // at (c_max, b_max)
};

class ExactSearch {
 public:
  ExactSearch(std::span<const model::Vcpu> vcpus,
              const model::PlatformSpec& platform)
      : vcpus_(vcpus), platform_(platform), grid_(platform.grid) {}

  HvAllocResult run() {
    HvAllocResult result;
    cores_.clear();
    recurse(0, result);
    return result;
  }

 private:
  using Mask = std::uint32_t;

  Mask mask_of(const std::vector<std::size_t>& core) const {
    Mask m = 0;
    for (const std::size_t v : core) m |= Mask{1} << v;
    return m;
  }

  const Frontier& frontier(const std::vector<std::size_t>& core) {
    const Mask key = mask_of(core);
    auto it = frontiers_.find(key);
    if (it != frontiers_.end()) return it->second;

    Frontier f;
    f.min_b.assign(grid_.cache_levels(), kInfeasible);
    // One CoreLoad per memoized core set: the period weights are derived
    // once here instead of once per probed grid point.
    CoreLoad cl(vcpus_, grid_, core);
    // min_b is non-increasing in c: sweep c upward, b downward.
    unsigned b_hi = grid_.b_max;
    for (unsigned c = grid_.c_min; c <= grid_.c_max; ++c) {
      unsigned best = kInfeasible;
      for (unsigned b = b_hi;; --b) {
        if (b < grid_.b_min || !cl.schedulable(c, b)) {
          break;
        }
        best = b;
        if (b == grid_.b_min) break;
      }
      f.min_b[c - grid_.c_min] = best;
      if (best != kInfeasible) {
        f.feasible = true;
        b_hi = best;  // monotonicity: larger c needs at most this b
      }
    }
    return frontiers_.emplace(key, std::move(f)).first->second;
  }

  /// Can the current partition receive a cache/bandwidth split within the
  /// pools? Knapsack DP over the cache pool minimizing total bandwidth;
  /// reconstructs the split on success.
  bool resources_feasible(HvAllocResult& out) {
    const std::size_t m = cores_.size();
    const unsigned C = platform_.total_cache();
    const unsigned B = platform_.total_bw();

    // dp[k·(C+1)+x] = minimal total bandwidth for the first k cores using
    // exactly x cache partitions; choice[k·(C+1)+x] = cache given to core
    // k-1. Flat row-major buffers reused across candidate partitions — the
    // DP runs once per complete packing the recursion reaches, and the
    // two-level vector-of-vectors layout used to dominate its cost.
    const std::size_t row = C + 1;
    dp_.assign((m + 1) * row, kInfeasible);
    choice_.assign((m + 1) * row, 0);
    dp_[0] = 0;
    for (std::size_t k = 0; k < m; ++k) {
      const Frontier& f = frontier(cores_[k]);
      if (!f.feasible) {
        if (auto* log = obs::decision_log()) {
          obs::DecisionEvent e;
          e.kind = obs::DecisionKind::kExactPartition;
          e.constraint = obs::DecisionConstraint::kNoFeasiblePartition;
          e.core = static_cast<std::int32_t>(k);
          e.value = static_cast<double>(m);
          log->emit(e);
        }
        return false;
      }
      const unsigned* dpk = dp_.data() + k * row;
      unsigned* dpn = dp_.data() + (k + 1) * row;
      unsigned* chn = choice_.data() + (k + 1) * row;
      for (unsigned x = 0; x <= C; ++x) {
        if (dpk[x] == kInfeasible) continue;
        for (unsigned c = grid_.c_min; c <= grid_.c_max && x + c <= C; ++c) {
          const unsigned need_b = f.min_b[c - grid_.c_min];
          if (need_b == kInfeasible) continue;
          const unsigned total_b = dpk[x] + need_b;
          if (total_b < dpn[x + c]) {
            dpn[x + c] = total_b;
            chn[x + c] = c;
          }
        }
      }
    }
    const unsigned* dpm = dp_.data() + m * row;
    unsigned best_x = C + 1;
    for (unsigned x = 0; x <= C; ++x)
      if (dpm[x] <= B && (best_x > C || dpm[x] < dpm[best_x]))
        best_x = x;
    if (best_x > C) {
      if (auto* log = obs::decision_log()) {
        unsigned min_b = kInfeasible;
        for (unsigned x = 0; x <= C; ++x) min_b = std::min(min_b, dpm[x]);
        obs::DecisionEvent e;
        e.kind = obs::DecisionKind::kExactPartition;
        e.constraint = obs::DecisionConstraint::kBwPoolExhausted;
        e.value = static_cast<double>(m);
        if (min_b != kInfeasible)
          e.margin = static_cast<double>(min_b - B);  // partitions short
        log->emit(e);
      }
      return false;
    }

    if (auto* log = obs::decision_log()) {
      obs::DecisionEvent e;
      e.kind = obs::DecisionKind::kExactPartition;
      e.accepted = true;
      e.value = static_cast<double>(m);
      e.margin = static_cast<double>(B - dpm[best_x]);  // spare bandwidth
      log->emit(e);
    }

    // Reconstruct.
    out.schedulable = true;
    out.cores_used = static_cast<unsigned>(m);
    out.vcpus_on_core = cores_;
    out.cache.assign(m, 0);
    out.bw.assign(m, 0);
    unsigned x = best_x;
    for (std::size_t k = m; k > 0; --k) {
      const unsigned c = choice_[k * row + x];
      out.cache[k - 1] = c;
      out.bw[k - 1] =
          frontier(cores_[k - 1]).min_b[c - grid_.c_min];
      x -= c;
    }
    return true;
  }

  void recurse(std::size_t v, HvAllocResult& result) {
    if (result.schedulable) return;
    if (v == vcpus_.size()) {
      if (!cores_.empty()) resources_feasible(result);
      return;
    }
    // Place VCPU v on each core existing at this level (if still feasible
    // at the full allocation — a cheap necessary condition). Index-based:
    // deeper levels push/pop additional cores on the same vector, which
    // would invalidate range-for iterators (they restore the size before
    // returning, so the fixed bound stays correct).
    const std::size_t existing = cores_.size();
    for (std::size_t k = 0; k < existing; ++k) {
      cores_[k].push_back(v);
      if (frontier(cores_[k]).feasible) recurse(v + 1, result);
      if (result.schedulable) return;
      cores_[k].pop_back();
    }
    // ... or open one new core (symmetry breaking: cores are
    // indistinguishable until resources are assigned).
    if (cores_.size() <
        std::min<std::size_t>(platform_.cores, vcpus_.size())) {
      cores_.push_back({v});
      if (cores_.size() * grid_.c_min <= platform_.total_cache() &&
          cores_.size() * grid_.b_min <= platform_.total_bw())
        recurse(v + 1, result);
      if (result.schedulable) return;
      cores_.pop_back();
    }
  }

  std::span<const model::Vcpu> vcpus_;
  const model::PlatformSpec& platform_;
  model::ResourceGrid grid_;
  std::vector<std::vector<std::size_t>> cores_;
  std::unordered_map<Mask, Frontier> frontiers_;
  std::vector<unsigned> dp_, choice_;  ///< flat DP scratch, reused per call
};

}  // namespace

HvAllocResult allocate_exact(std::span<const model::Vcpu> vcpus,
                             const model::PlatformSpec& platform,
                             const ExactConfig& cfg) {
  VC2M_CHECK(!vcpus.empty());
  VC2M_CHECK_MSG(vcpus.size() <= cfg.max_vcpus,
                 "instance too large for exhaustive search ("
                     << vcpus.size() << " VCPUs > " << cfg.max_vcpus << ")");
  VC2M_CHECK_MSG(vcpus.size() <= 31, "bitmask memoization limit");
  return ExactSearch(vcpus, platform).run();
}

}  // namespace vc2m::core
