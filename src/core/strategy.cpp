#include "core/strategy.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "analysis/schedulability.h"
#include "analysis/theorems.h"
#include "core/exact.h"
#include "core/packing.h"
#include "core/vm_alloc.h"
#include "obs/decision_log.h"
#include "util/error.h"
#include "util/phase_profiler.h"
#include "util/thread_pool.h"

namespace vc2m::core {

namespace {

/// Tasks → VCPUs via best-fit decreasing bin packing (per VM), used by the
/// two comparison solutions. `weight(i)` gives the packing weight of task i;
/// `make_vcpu(indices)` builds the VCPU for one bin.
template <typename WeightFn, typename MakeVcpu>
std::vector<model::Vcpu> pack_best_fit(const model::Taskset& tasks,
                                       WeightFn&& weight,
                                       MakeVcpu&& make_vcpu) {
  std::vector<model::Vcpu> vcpus;
  for (const auto& vm_idx : tasks_by_vm(tasks)) {
    std::vector<double> weights;
    weights.reserve(vm_idx.size());
    for (const std::size_t i : vm_idx) weights.push_back(weight(i));
    const auto bins = packing::best_fit_decreasing(
        weights, 1.0, /*max_bins=*/vm_idx.size());
    if (!bins) {  // a single task overflows a unit bin
      if (auto* log = obs::decision_log()) {
        double w_max = 0;
        for (const double w : weights) w_max = std::max(w_max, w);
        obs::DecisionEvent e;
        e.kind = obs::DecisionKind::kVmOutcome;
        e.constraint = obs::DecisionConstraint::kTaskOverflowsVcpu;
        e.vm = tasks[vm_idx.front()].vm;
        e.value = w_max;
        e.margin = std::max(0.0, w_max - 1.0);
        log->emit(e);
      }
      return {};
    }
    for (const auto& bin : *bins) {
      std::vector<std::size_t> global;
      global.reserve(bin.size());
      for (const std::size_t local : bin) global.push_back(vm_idx[local]);
      vcpus.push_back(make_vcpu(global));
    }
  }
  return vcpus;
}

/// §4.2 heuristic VM-level allocation, parameterized by the VCPU analysis.
class HeuristicVmPolicy final : public VmPolicy {
 public:
  HeuristicVmPolicy(VcpuAnalysis analysis, std::string_view name)
      : analysis_(analysis), name_(name) {}
  std::string_view name() const override { return name_; }
  bool release_sync() const override {
    return analysis_ == VcpuAnalysis::kFlattening;
  }
  std::vector<model::Vcpu> allocate(const model::Taskset& tasks,
                                    const model::PlatformSpec& platform,
                                    const SolveConfig& cfg,
                                    analysis::AnalysisContext& ctx,
                                    util::Rng& rng) const override {
    VmAllocConfig vm;
    vm.max_vcpus_per_vm = platform.cores;
    vm.clusters = cfg.clusters;
    vm.analysis = analysis_;
    return allocate_vms_heuristic(tasks, vm, ctx, rng);
  }

 private:
  VcpuAnalysis analysis_;
  std::string_view name_;
};

/// Evenly-partition comparison VM level: best-fit decreasing packing by
/// task utilization under the even (C/M, B/M) split, Theorem-2 VCPUs.
class EvenPackVmPolicy final : public VmPolicy {
 public:
  std::string_view name() const override {
    return "best-fit pack (Theorem 2, even-split weights)";
  }
  std::vector<model::Vcpu> allocate(const model::Taskset& tasks,
                                    const model::PlatformSpec& platform,
                                    const SolveConfig& cfg,
                                    analysis::AnalysisContext& ctx,
                                    util::Rng& rng) const override {
    (void)cfg;
    (void)ctx;
    (void)rng;
    const auto& grid = platform.grid;
    const unsigned c_even =
        std::max(grid.c_min, platform.total_cache() / platform.cores);
    const unsigned b_even =
        std::max(grid.b_min, platform.total_bw() / platform.cores);
    return pack_best_fit(
        tasks,
        [&](std::size_t i) { return tasks[i].utilization(c_even, b_even); },
        [&](const std::vector<std::size_t>& idx) {
          return analysis::regulated_vcpu(tasks, idx);
        });
  }
};

/// Baseline comparison VM level: best-fit decreasing packing by maximum
/// WCET (worst-case bandwidth, no cache), existing-CSA VCPU budgets.
class BaselinePackVmPolicy final : public VmPolicy {
 public:
  std::string_view name() const override {
    return "best-fit pack (existing CSA at max WCET)";
  }
  std::vector<model::Vcpu> allocate(const model::Taskset& tasks,
                                    const model::PlatformSpec& platform,
                                    const SolveConfig& cfg,
                                    analysis::AnalysisContext& ctx,
                                    util::Rng& rng) const override {
    (void)platform;
    (void)cfg;
    (void)rng;
    return pack_best_fit(
        tasks,
        [&](std::size_t i) {
          return tasks[i].max_wcet.ratio(tasks[i].period);
        },
        [&](const std::vector<std::size_t>& idx) {
          return vcpu_existing_csa_max_wcet(tasks, idx, ctx);
        });
  }
};

/// §4.3 three-phase heuristic HV level.
class HeuristicHvPolicy final : public HvPolicy {
 public:
  std::string_view name() const override {
    return "three-phase heuristic (pack, grant, balance)";
  }
  HvAllocResult allocate(std::span<const model::Vcpu> vcpus,
                         const model::PlatformSpec& platform,
                         const SolveConfig& cfg,
                         analysis::AnalysisContext& ctx,
                         util::Rng& rng) const override {
    (void)ctx;  // per-core accounting lives in CoreLoad (see hv_alloc.cpp)
    HvAllocConfig hv = cfg.hv;
    hv.clusters = cfg.clusters;
    return allocate_heuristic(vcpus, platform, hv, rng);
  }
};

/// Evenly-partition comparison HV level.
class EvenPartitionHvPolicy final : public HvPolicy {
 public:
  std::string_view name() const override {
    return "even partitions, best-fit pack";
  }
  HvAllocResult allocate(std::span<const model::Vcpu> vcpus,
                         const model::PlatformSpec& platform,
                         const SolveConfig& cfg,
                         analysis::AnalysisContext& ctx,
                         util::Rng& rng) const override {
    (void)cfg;
    (void)ctx;
    (void)rng;
    return allocate_even_partition(vcpus, platform);
  }
};

/// Exhaustive-search HV level (yardstick; exponential — dies above
/// ExactConfig::max_vcpus VCPUs, so keep it out of large sweeps).
class ExactHvPolicy final : public HvPolicy {
 public:
  std::string_view name() const override {
    return "exact search (exponential; small instances only)";
  }
  HvAllocResult allocate(std::span<const model::Vcpu> vcpus,
                         const model::PlatformSpec& platform,
                         const SolveConfig& cfg,
                         analysis::AnalysisContext& ctx,
                         util::Rng& rng) const override {
    (void)cfg;
    (void)ctx;
    (void)rng;
    return allocate_exact(vcpus, platform, ExactConfig{});
  }
};

}  // namespace

StrategyRegistry::StrategyRegistry() {
  const auto flat_vm = std::make_shared<HeuristicVmPolicy>(
      VcpuAnalysis::kFlattening, "heuristic (Theorem 1 flattening)");
  const auto ovf_vm = std::make_shared<HeuristicVmPolicy>(
      VcpuAnalysis::kRegulated, "heuristic (Theorem 2 regulated)");
  const auto csa_vm = std::make_shared<HeuristicVmPolicy>(
      VcpuAnalysis::kExistingCsa, "heuristic (existing CSA)");
  const auto even_vm = std::make_shared<EvenPackVmPolicy>();
  const auto base_vm = std::make_shared<BaselinePackVmPolicy>();
  const auto heur_hv = std::make_shared<HeuristicHvPolicy>();
  const auto even_hv = std::make_shared<EvenPartitionHvPolicy>();

  add({"flat", "Heuristic (flattening)",
       "Theorem-1 flattened VCPUs, three-phase packing with max-gain grants",
       flat_vm, heur_hv});
  add({"ovf", "Heuristic (overhead-free CSA)",
       "Theorem-2 regulated VCPUs, three-phase packing with max-gain grants",
       ovf_vm, heur_hv});
  add({"existing", "Heuristic (existing CSA)",
       "Existing-CSA VCPU budgets, three-phase packing with max-gain grants",
       csa_vm, heur_hv});
  add({"even", "Evenly-partition (overhead-free CSA)",
       "Theorem-2 regulated VCPUs, best-fit cores with even partition split",
       even_vm, even_hv});
  add({"baseline", "Baseline (existing CSA)",
       "Existing-CSA VCPU budgets, best-fit cores with even partition split",
       base_vm, even_hv});
  add({"exact-ovf", "Exact search (overhead-free CSA)",
       "Theorem-2 regulated VCPUs, exhaustive core/partition search yardstick",
       ovf_vm, std::make_shared<ExactHvPolicy>()});
}

StrategyRegistry& StrategyRegistry::instance() {
  static StrategyRegistry registry;
  return registry;
}

const Strategy& StrategyRegistry::add(Strategy s) {
  VC2M_CHECK_MSG(!s.key.empty(), "strategy key must be non-empty");
  VC2M_CHECK_MSG(s.vm && s.hv,
                 "strategy '" << s.key << "' needs both a VM-level and a "
                                         "hypervisor-level policy");
  VC2M_CHECK_MSG(find(s.key) == nullptr,
                 "strategy '" << s.key << "' is already registered");
  entries_.push_back(std::make_unique<Strategy>(std::move(s)));
  return *entries_.back();
}

const Strategy* StrategyRegistry::find(std::string_view key) const {
  for (const auto& e : entries_)
    if (e->key == key) return e.get();
  return nullptr;
}

const Strategy& StrategyRegistry::require(std::string_view key) const {
  if (const Strategy* s = find(key)) return *s;
  std::string known;
  for (const auto& e : entries_) {
    if (!known.empty()) known += ", ";
    known += e->key;
  }
  VC2M_CHECK_MSG(false,
                 "unknown strategy '" << key << "' (known: " << known << ")");
  std::abort();  // unreachable
}

std::vector<const Strategy*> StrategyRegistry::all() const {
  std::vector<const Strategy*> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.get());
  return out;
}

const std::vector<std::string>& default_solution_keys() {
  static const std::vector<std::string> kKeys = {"flat", "ovf", "existing",
                                                 "even", "baseline"};
  return kKeys;
}

SolveResult solve(const Strategy& strategy, const model::Taskset& tasks,
                  const model::PlatformSpec& platform, const SolveConfig& cfg,
                  util::Rng& rng) {
  VC2M_CHECK(!tasks.empty());
  VC2M_PROFILE_PHASE("solve");
  model::Taskset inflated = tasks;
  analysis::inflate_tasks(inflated, cfg.task_inflation);

  const auto t0 = std::chrono::steady_clock::now();
  SolveResult res;
  // Transient inner pool for single-solve callers that ask for intra-solve
  // parallelism without supplying a pool (experiment sweeps share one pool
  // across all solves instead). Declared before ctx so it outlives it.
  std::unique_ptr<util::ThreadPool> transient_pool;
  util::ThreadPool* inner_pool = cfg.inner_pool;
  const int inner_jobs = cfg.inner_jobs == 0
                             ? static_cast<int>(util::ThreadPool::hardware_workers())
                             : cfg.inner_jobs;
  if (inner_jobs > 1 && inner_pool == nullptr) {
    transient_pool = std::make_unique<util::ThreadPool>(
        static_cast<unsigned>(inner_jobs));
    inner_pool = transient_pool.get();
  }
  {
    analysis::AnalysisContext ctx;  // shared by both levels; owns counters
    ctx.set_inner_parallelism(inner_pool, inner_jobs);
    if (auto* log = obs::decision_log()) {
      obs::DecisionEvent e;
      e.kind = obs::DecisionKind::kSolveBegin;
      e.accepted = true;
      e.value = static_cast<double>(inflated.size());
      log->emit(e);
    }
    auto vcpus = strategy.vm->allocate(inflated, platform, cfg, ctx, rng);
    if (auto* log = obs::decision_log()) {
      obs::DecisionEvent e;
      e.kind = obs::DecisionKind::kVmOutcome;
      e.accepted = !vcpus.empty();
      if (vcpus.empty())
        e.constraint = obs::DecisionConstraint::kTaskOverflowsVcpu;
      e.value = static_cast<double>(vcpus.size());
      log->emit(e);
    }
    if (!vcpus.empty()) {  // empty = VM-level packing already failed
      analysis::inflate_vcpus(vcpus, cfg.vcpu_inflation);
      res.mapping = strategy.hv->allocate(vcpus, platform, cfg, ctx, rng);
      res.schedulable = res.mapping.schedulable;
      res.vcpus = std::move(vcpus);
    }
    if (auto* log = obs::decision_log()) {
      obs::DecisionEvent e;
      e.kind = obs::DecisionKind::kVerdict;
      e.accepted = res.schedulable;
      e.core = static_cast<std::int32_t>(res.mapping.cores_used);
      e.value = static_cast<double>(res.vcpus.size());
      log->emit(e);
    }
    res.counters = ctx.counters();
  }
  res.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return res;
}

SolveResult solve(std::string_view strategy_key, const model::Taskset& tasks,
                  const model::PlatformSpec& platform, const SolveConfig& cfg,
                  util::Rng& rng) {
  return solve(StrategyRegistry::instance().require(strategy_key), tasks,
               platform, cfg, rng);
}

}  // namespace vc2m::core
