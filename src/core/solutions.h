// The five solutions evaluated in §5, behind one interface.
//
//   1. Heuristic (flattening)           — Theorem 1 VCPUs + heuristic
//                                         hypervisor-level allocation.
//   2. Heuristic (overhead-free CSA)    — Theorem 2 well-regulated VCPUs +
//                                         heuristic allocation.
//   3. Heuristic (existing CSA)         — heuristic allocation, but VCPU
//                                         parameters from the periodic
//                                         resource model [13].
//   4. Evenly-partition (overhead-free) — Theorem 2 VCPUs, cache/BW split
//                                         evenly over all cores, best-fit
//                                         bin packing at both levels.
//   5. Baseline (existing CSA)          — PRM VCPU parameters with tasks at
//                                         their maximum WCET (worst-case BW,
//                                         no cache), best-fit packing.
//
// Each is a registered composition of a VM-level and a hypervisor-level
// policy — see core/strategy.h for the registry and the policy interfaces.
// The enum below is a stable alias for the five registry keys; new
// strategies need no enum value, only a registration.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/strategy.h"
#include "model/platform.h"
#include "model/task.h"
#include "util/rng.h"

namespace vc2m::core {

enum class Solution {
  kHeuristicFlattening,
  kHeuristicOverheadFree,
  kHeuristicExistingCsa,
  kEvenPartitionOverheadFree,
  kBaselineExistingCsa,
};

/// The registry key behind an enum value ("flat", "ovf", "existing",
/// "even", "baseline") — pure data, no per-solution logic.
std::string_view solution_key(Solution s);

/// The registered display name, e.g. "Heuristic (overhead-free CSA)".
std::string to_string(Solution s);

/// All five, in the paper's legend order (strongest first).
const std::vector<Solution>& all_solutions();

/// Registry lookup by enum, then solve. Equivalent to
/// `solve(solution_key(s), ...)`.
SolveResult solve(Solution s, const model::Taskset& tasks,
                  const model::PlatformSpec& platform, const SolveConfig& cfg,
                  util::Rng& rng);

}  // namespace vc2m::core
