// The five solutions evaluated in §5, behind one interface.
//
//   1. Heuristic (flattening)           — Theorem 1 VCPUs + heuristic
//                                         hypervisor-level allocation.
//   2. Heuristic (overhead-free CSA)    — Theorem 2 well-regulated VCPUs +
//                                         heuristic allocation.
//   3. Heuristic (existing CSA)         — heuristic allocation, but VCPU
//                                         parameters from the periodic
//                                         resource model [13].
//   4. Evenly-partition (overhead-free) — Theorem 2 VCPUs, cache/BW split
//                                         evenly over all cores, best-fit
//                                         bin packing at both levels.
//   5. Baseline (existing CSA)          — PRM VCPU parameters with tasks at
//                                         their maximum WCET (worst-case BW,
//                                         no cache), best-fit packing.
#pragma once

#include <string>
#include <vector>

#include "core/hv_alloc.h"
#include "core/vm_alloc.h"
#include "model/platform.h"
#include "model/task.h"
#include "util/instrument.h"
#include "util/rng.h"

namespace vc2m::core {

enum class Solution {
  kHeuristicFlattening,
  kHeuristicOverheadFree,
  kHeuristicExistingCsa,
  kEvenPartitionOverheadFree,
  kBaselineExistingCsa,
};

std::string to_string(Solution s);

/// All five, in the paper's legend order (strongest first).
const std::vector<Solution>& all_solutions();

struct SolveConfig {
  /// Slowdown classes for both clustering stages.
  std::size_t clusters = 4;
  HvAllocConfig hv;
  /// Intra-core overhead inflation (§4.1 Remarks); zero by default, as the
  /// paper's schedulability study abstracts measured overheads away.
  util::Time task_inflation = util::Time::zero();
  util::Time vcpu_inflation = util::Time::zero();
};

struct SolveResult {
  bool schedulable = false;
  std::vector<model::Vcpu> vcpus;
  HvAllocResult mapping;
  double seconds = 0;  ///< wall-clock analysis + allocation time
  /// What the allocator did: clustering effort, admission tests, dbf
  /// evaluations, search coverage, per-phase wall time (src/obs reports
  /// these through the metrics registry).
  util::AllocCounters counters;
};

/// Run one solution on one taskset. Tasks must share the platform's
/// resource grid; solutions based on Theorem 2 additionally require the
/// taskset to be harmonic (guaranteed by the §5.1 generator).
SolveResult solve(Solution s, const model::Taskset& tasks,
                  const model::PlatformSpec& platform, const SolveConfig& cfg,
                  util::Rng& rng);

}  // namespace vc2m::core
