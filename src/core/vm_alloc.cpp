#include "core/vm_alloc.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <numeric>
#include <optional>

#include "analysis/dbf.h"
#include "analysis/theorems.h"
#include "core/kmeans.h"
#include "obs/decision_log.h"
#include "util/error.h"
#include "util/instrument.h"
#include "util/phase_profiler.h"

namespace vc2m::core {

namespace {

util::Time min_period(const model::Taskset& tasks,
                      std::span<const std::size_t> idx) {
  util::Time p = tasks[idx.front()].period;
  for (const std::size_t i : idx) p = util::min(p, tasks[i].period);
  return p;
}

}  // namespace

model::Vcpu vcpu_existing_csa(const model::Taskset& tasks,
                              std::span<const std::size_t> idx,
                              analysis::AnalysisContext& ctx) {
  VC2M_CHECK(!idx.empty());
  const auto& grid = tasks[idx.front()].wcet.grid();
  const util::Time pi = min_period(tasks, idx);

  model::Vcpu v;
  v.period = pi;
  v.vm = tasks[idx.front()].vm;
  v.tasks.assign(idx.begin(), idx.end());
  v.budget = model::WcetFn(grid);

  const auto emit_point = [&](unsigned c, unsigned b,
                              std::span<const analysis::PTask> ptasks,
                              const std::optional<util::Time>& theta) {
    auto* log = obs::decision_log();
    if (!log) return;
    obs::DecisionEvent e;
    e.kind = obs::DecisionKind::kBudgetPoint;
    e.vm = v.vm;
    e.cache = static_cast<std::int32_t>(c);
    e.bw = static_cast<std::int32_t>(b);
    if (theta) {
      e.accepted = true;
      e.value = theta->ratio(pi);   // budget fraction Θ/Π
      e.margin = 1.0 - e.value;     // headroom to a fully-loaded VCPU
    } else {
      // Θ ≥ u·Π is a lower bound on any feasible budget, so the cell is
      // short by at least u − 1 budget fractions.
      double u = 0;
      for (const auto& t : ptasks) u += t.wcet.ratio(t.period);
      e.constraint = obs::DecisionConstraint::kNoFeasibleBudget;
      e.value = u;
      e.margin = std::max(0.0, u - 1.0);
    }
    log->emit(e);
  };

  if (analysis::fast_kernels_enabled()) {
    // Fast path: materialize every grid cell's task view in the context
    // arena and answer the whole budget surface in one batch (shared
    // checkpoint stream, optional inner-parallel striping). Decision
    // events are replayed serially below in the legacy cell order and
    // interleaving: [kBudgetSearch iff that cell ran a fresh search]
    // then kBudgetPoint, per cell.
    const std::size_t nc = grid.c_max - grid.c_min + 1u;
    const std::size_t nb = grid.b_max - grid.b_min + 1u;
    const std::size_t cells = nc * nb;
    util::Arena::Scope mark(ctx.arena());
    auto cell_tasks =
        ctx.arena().alloc_array<analysis::PTask>(cells * idx.size());
    auto queries =
        ctx.arena().alloc_array<std::span<const analysis::PTask>>(cells);
    std::size_t cell = 0;
    for (unsigned c = grid.c_min; c <= grid.c_max; ++c)
      for (unsigned b = grid.b_min; b <= grid.b_max; ++b, ++cell) {
        analysis::PTask* dst = cell_tasks.data() + cell * idx.size();
        for (std::size_t k = 0; k < idx.size(); ++k)
          dst[k] = {tasks[idx[k]].period, tasks[idx[k]].wcet.at(c, b)};
        queries[cell] = {dst, idx.size()};
      }
    const auto res = ctx.min_budget_batch(queries, pi);
    cell = 0;
    for (unsigned c = grid.c_min; c <= grid.c_max; ++c)
      for (unsigned b = grid.b_min; b <= grid.b_max; ++b, ++cell) {
        const auto& r = res[cell];
        v.budget.set(c, b, r.theta ? *r.theta : pi * 2);
        if (r.searched)
          analysis::AnalysisContext::emit_budget_search(queries[cell], pi,
                                                        r.theta);
        emit_point(c, b, queries[cell], r.theta);
      }
    return v;
  }

  std::vector<analysis::PTask> ptasks(idx.size());
  // Budget surfaces are non-increasing in c and b (WCET surfaces are
  // monotone), so the budget already found at (c−1, b) or (c, b−1) is a
  // feasible upper bound here: it seeds the bounded binary search without
  // changing the minimum. prev_row holds Θ(c−1, ·).
  std::vector<std::optional<util::Time>> prev_row(grid.bw_levels());
  for (unsigned c = grid.c_min; c <= grid.c_max; ++c) {
    std::optional<util::Time> left;
    for (unsigned b = grid.b_min; b <= grid.b_max; ++b) {
      for (std::size_t k = 0; k < idx.size(); ++k)
        ptasks[k] = {tasks[idx[k]].period, tasks[idx[k]].wcet.at(c, b)};
      std::optional<util::Time> hint = left;
      const auto& up = prev_row[b - grid.b_min];
      if (up && (!hint || *up < *hint)) hint = up;
      const auto theta = ctx.min_budget(ptasks, pi, hint);
      v.budget.set(c, b, theta ? *theta : pi * 2);
      emit_point(c, b, ptasks, theta);
      left = theta;
      prev_row[b - grid.b_min] = theta;
    }
  }
  return v;
}

model::Vcpu vcpu_existing_csa(const model::Taskset& tasks,
                              std::span<const std::size_t> idx) {
  analysis::AnalysisContext ctx;
  return vcpu_existing_csa(tasks, idx, ctx);
}

model::Vcpu vcpu_existing_csa_max_wcet(const model::Taskset& tasks,
                                       std::span<const std::size_t> idx,
                                       analysis::AnalysisContext& ctx) {
  VC2M_CHECK(!idx.empty());
  const auto& grid = tasks[idx.front()].wcet.grid();
  const util::Time pi = min_period(tasks, idx);

  std::vector<analysis::PTask> ptasks;
  ptasks.reserve(idx.size());
  for (const std::size_t i : idx)
    ptasks.push_back({tasks[i].period, tasks[i].max_wcet});
  const auto theta = ctx.min_budget(ptasks, pi);

  model::Vcpu v;
  v.period = pi;
  v.vm = tasks[idx.front()].vm;
  v.tasks.assign(idx.begin(), idx.end());
  v.budget = model::WcetFn(grid, theta ? *theta : pi * 2);
  return v;
}

model::Vcpu vcpu_existing_csa_max_wcet(const model::Taskset& tasks,
                                       std::span<const std::size_t> idx) {
  analysis::AnalysisContext ctx;
  return vcpu_existing_csa_max_wcet(tasks, idx, ctx);
}

std::vector<std::vector<std::size_t>> tasks_by_vm(
    const model::Taskset& tasks) {
  std::map<int, std::vector<std::size_t>> by_vm;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    by_vm[tasks[i].vm].push_back(i);
  std::vector<std::vector<std::size_t>> out;
  out.reserve(by_vm.size());
  for (auto& [vm, idx] : by_vm) out.push_back(std::move(idx));
  return out;
}

std::vector<model::Vcpu> allocate_vm_heuristic(
    const model::Taskset& tasks, std::span<const std::size_t> vm_task_idx,
    const VmAllocConfig& cfg, analysis::AnalysisContext& ctx, util::Rng& rng) {
  VC2M_CHECK(!vm_task_idx.empty());
  VC2M_CHECK(cfg.max_vcpus_per_vm >= 1);

  if (cfg.analysis == VcpuAnalysis::kFlattening) {
    std::vector<model::Vcpu> vcpus;
    vcpus.reserve(vm_task_idx.size());
    for (const std::size_t i : vm_task_idx)
      vcpus.push_back(analysis::flattened_vcpu(tasks[i], i));
    return vcpus;
  }

  const std::size_t n = vm_task_idx.size();
  const std::size_t m = std::min<std::size_t>(n, cfg.max_vcpus_per_vm);
  const std::size_t k = std::min({cfg.clusters, m, n});

  // Cluster by slowdown vector.
  std::vector<std::vector<double>> points;
  points.reserve(n);
  for (const std::size_t i : vm_task_idx)
    points.push_back(tasks[i].slowdown().flat());
  const auto clusters = [&] {
    VC2M_PROFILE_PHASE("cluster");
    return cluster_members(kmeans(points, k, rng), k);
  }();

  // Pack tasks onto the m VCPUs worst-fit in decreasing reference
  // utilization (so VCPU loads stay similar), iterating clusters in
  // decreasing total-utilization order. Among near-tied VCPUs, a small
  // affinity bonus prefers a VCPU already hosting the task's cluster, so
  // tasks with similar slowdown vectors share a VCPU whenever balance
  // permits (§4.2).
  std::vector<double> cluster_util(k, 0);
  for (std::size_t c = 0; c < k; ++c)
    for (const std::size_t local : clusters[c])
      cluster_util[c] += tasks[vm_task_idx[local]].reference_utilization();
  std::vector<std::size_t> cluster_order(k);
  std::iota(cluster_order.begin(), cluster_order.end(), 0);
  std::sort(cluster_order.begin(), cluster_order.end(),
            [&](std::size_t a, std::size_t b) {
              return cluster_util[a] > cluster_util[b];
            });

  constexpr double kAffinityBonus = 0.05;
  std::vector<std::vector<std::size_t>> vcpu_tasks(m);  // global indices
  std::vector<double> loads(m, 0);
  std::vector<std::size_t> bin_cluster(m, k);  // k = "no cluster yet"
  for (const std::size_t c : cluster_order) {
    std::vector<std::size_t> order = clusters[c];
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return tasks[vm_task_idx[a]].reference_utilization() >
             tasks[vm_task_idx[b]].reference_utilization();
    });
    for (const std::size_t local : order) {
      const std::size_t best =
          packing::worst_fit_bin(loads, [&](std::size_t bi) {
            return (bin_cluster[bi] == c || bin_cluster[bi] == k)
                       ? kAffinityBonus
                       : 0.0;
          });
      vcpu_tasks[best].push_back(vm_task_idx[local]);
      loads[best] += tasks[vm_task_idx[local]].reference_utilization();
      if (bin_cluster[best] == k) bin_cluster[best] = c;
    }
  }
  std::erase_if(vcpu_tasks,
                [](const std::vector<std::size_t>& v) { return v.empty(); });

  std::vector<model::Vcpu> vcpus;
  vcpus.reserve(vcpu_tasks.size());
  VC2M_PROFILE_PHASE("vcpu_analysis");
  for (const auto& idx : vcpu_tasks) {
    switch (cfg.analysis) {
      case VcpuAnalysis::kRegulated:
        // Theorem 2 needs harmonic periods; non-harmonic inputs are split
        // into harmonic chains, one well-regulated VCPU each (a fully
        // harmonic bin — the §5.1 workloads — stays a single VCPU).
        for (const auto& group : analysis::harmonic_groups(tasks, idx))
          vcpus.push_back(analysis::regulated_vcpu(tasks, group));
        break;
      case VcpuAnalysis::kExistingCsa:
        vcpus.push_back(vcpu_existing_csa(tasks, idx, ctx));
        break;
      case VcpuAnalysis::kFlattening:
        VC2M_CHECK_MSG(false, "handled above");
    }
  }
  return vcpus;
}

std::vector<model::Vcpu> allocate_vm_heuristic(
    const model::Taskset& tasks, std::span<const std::size_t> vm_task_idx,
    const VmAllocConfig& cfg, util::Rng& rng) {
  analysis::AnalysisContext ctx;
  return allocate_vm_heuristic(tasks, vm_task_idx, cfg, ctx, rng);
}

std::vector<model::Vcpu> allocate_vms_heuristic(
    const model::Taskset& tasks, const VmAllocConfig& cfg,
    analysis::AnalysisContext& ctx, util::Rng& rng) {
  const auto t0 = std::chrono::steady_clock::now();
  VC2M_PROFILE_PHASE("vm_alloc");
  std::vector<model::Vcpu> all;
  for (const auto& vm_idx : tasks_by_vm(tasks)) {
    auto vcpus = allocate_vm_heuristic(tasks, vm_idx, cfg, ctx, rng);
    all.insert(all.end(), std::make_move_iterator(vcpus.begin()),
               std::make_move_iterator(vcpus.end()));
  }
  if (auto* ctr = util::alloc_counters())
    ctr->vm_alloc_seconds += std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
  return all;
}

std::vector<model::Vcpu> allocate_vms_heuristic(const model::Taskset& tasks,
                                                const VmAllocConfig& cfg,
                                                util::Rng& rng) {
  analysis::AnalysisContext ctx;
  return allocate_vms_heuristic(tasks, cfg, ctx, rng);
}

}  // namespace vc2m::core
