#include "core/kmeans.h"

#include <algorithm>
#include <limits>

#include "util/error.h"
#include "util/instrument.h"

namespace vc2m::core {

double squared_distance(const std::vector<double>& a,
                        const std::vector<double>& b) {
  VC2M_CHECK(a.size() == b.size());
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

namespace {

/// kmeans++: first centroid uniform, then proportional to squared distance
/// from the nearest chosen centroid.
std::vector<std::vector<double>> seed_centroids(
    const std::vector<std::vector<double>>& points, std::size_t k,
    util::Rng& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.index(points.size())]);
  std::vector<double> d2(points.size());
  while (centroids.size() < k) {
    double total = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : centroids)
        best = std::min(best, squared_distance(points[i], c));
      d2[i] = best;
      total += best;
    }
    std::size_t pick;
    if (total <= 0) {
      // All points coincide with existing centroids; any choice works.
      pick = rng.index(points.size());
    } else {
      double r = rng.uniform01() * total;
      pick = points.size() - 1;
      for (std::size_t i = 0; i < points.size(); ++i) {
        r -= d2[i];
        if (r <= 0) {
          pick = i;
          break;
        }
      }
    }
    centroids.push_back(points[pick]);
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    std::size_t k, util::Rng& rng, unsigned max_iters) {
  VC2M_CHECK_MSG(k >= 1 && k <= points.size(),
                 "k=" << k << " incompatible with " << points.size()
                      << " points");
  const std::size_t dim = points.front().size();
  VC2M_CHECK(dim > 0);
  for (const auto& p : points) VC2M_CHECK(p.size() == dim);

  KMeansResult res;
  res.centroids = seed_centroids(points, k, rng);
  res.assignment.assign(points.size(), 0);

  double last_shift = 0;  // centroid movement of the final update step
  for (unsigned iter = 0; iter < max_iters; ++iter) {
    res.iterations = iter + 1;
    // Assignment step.
    bool changed = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(points[i], res.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (res.assignment[i] != best) {
        res.assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    // Update step.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      ++counts[res.assignment[i]];
      for (std::size_t d = 0; d < dim; ++d)
        sums[res.assignment[i]][d] += points[i][d];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Repair an empty cluster: steal the point farthest from its
        // centroid so every cluster stays populated.
        std::size_t worst = 0;
        double worst_d = -1;
        for (std::size_t i = 0; i < points.size(); ++i) {
          if (counts[res.assignment[i]] <= 1) continue;
          const double d =
              squared_distance(points[i], res.centroids[res.assignment[i]]);
          if (d > worst_d) {
            worst_d = d;
            worst = i;
          }
        }
        --counts[res.assignment[worst]];
        for (std::size_t d = 0; d < dim; ++d)
          sums[res.assignment[worst]][d] -= points[worst][d];
        res.assignment[worst] = c;
        counts[c] = 1;
        sums[c] = points[worst];
      }
      for (std::size_t d = 0; d < dim; ++d)
        res.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
    }
    last_shift = 0;
    for (std::size_t c = 0; c < k; ++c) {
      std::vector<double> updated(dim);
      for (std::size_t d = 0; d < dim; ++d)
        updated[d] = sums[c][d] / static_cast<double>(counts[c]);
      last_shift += squared_distance(res.centroids[c], updated);
    }
  }
  if (auto* ctr = util::alloc_counters()) {
    ++ctr->kmeans_runs;
    ctr->kmeans_iterations += res.iterations;
    ctr->kmeans_final_shift += last_shift;
  }
  return res;
}

std::vector<std::vector<std::size_t>> cluster_members(
    const KMeansResult& result, std::size_t k) {
  std::vector<std::vector<std::size_t>> members(k);
  for (std::size_t i = 0; i < result.assignment.size(); ++i) {
    VC2M_CHECK(result.assignment[i] < k);
    members[result.assignment[i]].push_back(i);
  }
  return members;
}

}  // namespace vc2m::core
