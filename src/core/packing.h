// Shared bin-packing primitives for both allocation levels.
//
// Best-fit decreasing drives the VM-level task→VCPU packing of the
// comparison solutions and the even-partition hypervisor packer; worst-fit
// (least-loaded bin first) drives the balance-seeking placements of the
// VM-level heuristic and hv_alloc Phase 1. They live here so every
// allocator shares one implementation — and one set of edge-case rules.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <limits>
#include <optional>
#include <span>
#include <vector>

namespace vc2m::core {
namespace packing {

/// Best-fit decreasing bin packing: items with the given weights into bins
/// of the given capacity, at most `max_bins` bins. Each item goes to the
/// feasible open bin with the least residual capacity (capacity-exact fits,
/// within a 1e-12 rounding tolerance, count as feasible); a new bin opens
/// only when no open bin fits. Items are never silently dropped: the result
/// is std::nullopt when any item cannot be placed — in particular for any
/// item at all when max_bins == 0, and for an item whose weight exceeds the
/// capacity. Zero-weight items place like any other (best fit sends them to
/// the fullest open bin, or opens the first bin). Weights must be finite
/// and non-negative — a NaN weight would corrupt the sort order and a
/// negative one would let later items over-pack its bin, so both are
/// rejected loudly. An empty weight list yields zero bins.
std::optional<std::vector<std::vector<std::size_t>>> best_fit_decreasing(
    std::span<const double> weights, double capacity, std::size_t max_bins);

/// Braced-list convenience (std::initializer_list does not convert to
/// std::span until C++26).
inline std::optional<std::vector<std::vector<std::size_t>>>
best_fit_decreasing(std::initializer_list<double> weights, double capacity,
                    std::size_t max_bins) {
  return best_fit_decreasing(
      std::span<const double>(weights.begin(), weights.size()), capacity,
      max_bins);
}

/// Indices 0..n-1 sorted by decreasing weight (the order both packers
/// consume items in).
std::vector<std::size_t> decreasing_order(std::span<const double> weights);

/// Worst-fit choice: the index of the least-loaded bin, after subtracting a
/// per-bin score bonus (the VM-level packer uses it for cluster affinity).
/// The first minimum wins on exact ties, matching std::min_element.
template <typename BonusFn>
std::size_t worst_fit_bin(std::span<const double> loads, BonusFn&& bonus) {
  std::size_t best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t bi = 0; bi < loads.size(); ++bi) {
    const double score = loads[bi] - bonus(bi);
    if (score < best_score) {
      best_score = score;
      best = bi;
    }
  }
  return best;
}

inline std::size_t worst_fit_bin(std::span<const double> loads) {
  return worst_fit_bin(loads, [](std::size_t) { return 0.0; });
}

}  // namespace packing

// Long-standing callers (and tests) use the unqualified core:: name.
using packing::best_fit_decreasing;

}  // namespace vc2m::core
