#include "core/solutions.h"

#include <chrono>

#include "analysis/schedulability.h"
#include "analysis/theorems.h"
#include "util/error.h"

namespace vc2m::core {

std::string to_string(Solution s) {
  switch (s) {
    case Solution::kHeuristicFlattening: return "Heuristic (flattening)";
    case Solution::kHeuristicOverheadFree: return "Heuristic (overhead-free CSA)";
    case Solution::kHeuristicExistingCsa: return "Heuristic (existing CSA)";
    case Solution::kEvenPartitionOverheadFree:
      return "Evenly-partition (overhead-free CSA)";
    case Solution::kBaselineExistingCsa: return "Baseline (existing CSA)";
  }
  return "?";
}

const std::vector<Solution>& all_solutions() {
  static const std::vector<Solution> kAll = {
      Solution::kHeuristicFlattening,
      Solution::kHeuristicOverheadFree,
      Solution::kHeuristicExistingCsa,
      Solution::kEvenPartitionOverheadFree,
      Solution::kBaselineExistingCsa,
  };
  return kAll;
}

namespace {

/// Tasks → VCPUs via best-fit decreasing bin packing (per VM), used by the
/// two comparison solutions. `weight(i)` gives the packing weight of task i;
/// `make_vcpu(indices)` builds the VCPU for one bin.
template <typename WeightFn, typename MakeVcpu>
std::vector<model::Vcpu> pack_best_fit(const model::Taskset& tasks,
                                       WeightFn&& weight,
                                       MakeVcpu&& make_vcpu) {
  std::vector<model::Vcpu> vcpus;
  for (const auto& vm_idx : tasks_by_vm(tasks)) {
    std::vector<double> weights;
    weights.reserve(vm_idx.size());
    for (const std::size_t i : vm_idx) weights.push_back(weight(i));
    const auto bins = best_fit_decreasing(
        weights, 1.0, /*max_bins=*/vm_idx.size());
    if (!bins) return {};  // a single task overflows a unit bin
    for (const auto& bin : *bins) {
      std::vector<std::size_t> global;
      global.reserve(bin.size());
      for (const std::size_t local : bin) global.push_back(vm_idx[local]);
      vcpus.push_back(make_vcpu(global));
    }
  }
  return vcpus;
}

SolveResult finish_heuristic(std::vector<model::Vcpu> vcpus,
                             const model::PlatformSpec& platform,
                             const SolveConfig& cfg, util::Rng& rng) {
  SolveResult res;
  analysis::inflate_vcpus(vcpus, cfg.vcpu_inflation);
  HvAllocConfig hv = cfg.hv;
  hv.clusters = cfg.clusters;
  res.mapping = allocate_heuristic(vcpus, platform, hv, rng);
  res.schedulable = res.mapping.schedulable;
  res.vcpus = std::move(vcpus);
  return res;
}

SolveResult finish_even(std::vector<model::Vcpu> vcpus,
                        const model::PlatformSpec& platform,
                        const SolveConfig& cfg) {
  SolveResult res;
  if (vcpus.empty()) return res;  // VM-level packing already failed
  analysis::inflate_vcpus(vcpus, cfg.vcpu_inflation);
  res.mapping = allocate_even_partition(vcpus, platform);
  res.schedulable = res.mapping.schedulable;
  res.vcpus = std::move(vcpus);
  return res;
}

SolveResult dispatch(Solution s, const model::Taskset& tasks,
                     const model::PlatformSpec& platform,
                     const SolveConfig& cfg, util::Rng& rng) {
  VmAllocConfig vm;
  vm.max_vcpus_per_vm = platform.cores;
  vm.clusters = cfg.clusters;

  switch (s) {
    case Solution::kHeuristicFlattening:
      vm.analysis = VcpuAnalysis::kFlattening;
      return finish_heuristic(allocate_vms_heuristic(tasks, vm, rng),
                              platform, cfg, rng);

    case Solution::kHeuristicOverheadFree:
      vm.analysis = VcpuAnalysis::kRegulated;
      return finish_heuristic(allocate_vms_heuristic(tasks, vm, rng),
                              platform, cfg, rng);

    case Solution::kHeuristicExistingCsa:
      vm.analysis = VcpuAnalysis::kExistingCsa;
      return finish_heuristic(allocate_vms_heuristic(tasks, vm, rng),
                              platform, cfg, rng);

    case Solution::kEvenPartitionOverheadFree: {
      const auto& grid = platform.grid;
      const unsigned c_even =
          std::max(grid.c_min, platform.total_cache() / platform.cores);
      const unsigned b_even =
          std::max(grid.b_min, platform.total_bw() / platform.cores);
      auto vcpus = pack_best_fit(
          tasks,
          [&](std::size_t i) { return tasks[i].utilization(c_even, b_even); },
          [&](const std::vector<std::size_t>& idx) {
            return analysis::regulated_vcpu(tasks, idx);
          });
      return finish_even(std::move(vcpus), platform, cfg);
    }

    case Solution::kBaselineExistingCsa: {
      auto vcpus = pack_best_fit(
          tasks,
          [&](std::size_t i) {
            return tasks[i].max_wcet.ratio(tasks[i].period);
          },
          [&](const std::vector<std::size_t>& idx) {
            return vcpu_existing_csa_max_wcet(tasks, idx);
          });
      return finish_even(std::move(vcpus), platform, cfg);
    }
  }
  VC2M_CHECK_MSG(false, "unknown solution");
  return {};
}

}  // namespace

SolveResult solve(Solution s, const model::Taskset& tasks,
                  const model::PlatformSpec& platform, const SolveConfig& cfg,
                  util::Rng& rng) {
  VC2M_CHECK(!tasks.empty());
  model::Taskset inflated = tasks;
  analysis::inflate_tasks(inflated, cfg.task_inflation);

  const auto t0 = std::chrono::steady_clock::now();
  util::AllocCounterScope scope;
  SolveResult res = dispatch(s, inflated, platform, cfg, rng);
  const auto t1 = std::chrono::steady_clock::now();
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  res.counters = scope.counters();
  return res;
}

}  // namespace vc2m::core
