#include "core/solutions.h"

#include <cstddef>

namespace vc2m::core {

std::string_view solution_key(Solution s) {
  // Indexed by enum value; keys resolve in the StrategyRegistry.
  static constexpr std::string_view kKeys[] = {"flat", "ovf", "existing",
                                               "even", "baseline"};
  return kKeys[static_cast<std::size_t>(s)];
}

std::string to_string(Solution s) {
  return StrategyRegistry::instance().require(solution_key(s)).display;
}

const std::vector<Solution>& all_solutions() {
  static const std::vector<Solution> kAll = {
      Solution::kHeuristicFlattening,
      Solution::kHeuristicOverheadFree,
      Solution::kHeuristicExistingCsa,
      Solution::kEvenPartitionOverheadFree,
      Solution::kBaselineExistingCsa,
  };
  return kAll;
}

SolveResult solve(Solution s, const model::Taskset& tasks,
                  const model::PlatformSpec& platform, const SolveConfig& cfg,
                  util::Rng& rng) {
  return solve(StrategyRegistry::instance().require(solution_key(s)), tasks,
               platform, cfg, rng);
}

}  // namespace vc2m::core
