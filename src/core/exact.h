// Exact feasibility for small instances — the heuristic's yardstick.
//
// Enumerates every partition of the VCPUs over up to M cores (with
// symmetry breaking) and decides, per partition, whether cache and
// bandwidth partitions can be split so that every core's utilization is at
// most 1 — computed exactly via a per-core Pareto frontier (minimum
// bandwidth per cache allocation) and a knapsack-style DP over the cache
// pool. Exponential in the VCPU count; intended for ≤ ~10 VCPUs, where it
// certifies whether the three-phase heuristic left feasible mappings on
// the table (bench_optimality_gap).
#pragma once

#include <cstddef>
#include <span>

#include "core/hv_alloc.h"
#include "model/platform.h"
#include "model/task.h"

namespace vc2m::core {

struct ExactConfig {
  /// Hard cap on instance size: above this, allocate_exact throws rather
  /// than silently taking exponential time.
  std::size_t max_vcpus = 10;
};

/// Exhaustive feasibility search. Returns a schedulable mapping iff one
/// exists (so `!result.schedulable` is a proof of infeasibility under the
/// per-core utilization test). The returned mapping uses, per core, the
/// cache/bandwidth split found by the DP (minimal in total bandwidth for
/// its cache split; not otherwise canonical).
HvAllocResult allocate_exact(std::span<const model::Vcpu> vcpus,
                             const model::PlatformSpec& platform,
                             const ExactConfig& cfg = {});

}  // namespace vc2m::core
