#include "core/hv_alloc.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>

#include "analysis/schedulability.h"
#include "core/core_load.h"
#include "core/kmeans.h"
#include "core/packing.h"
#include "util/error.h"
#include "util/instrument.h"
#include "util/phase_profiler.h"

namespace vc2m::core {

unsigned HvAllocResult::total_cache() const {
  unsigned t = 0;
  for (const unsigned c : cache) t += c;
  return t;
}

unsigned HvAllocResult::total_bw() const {
  unsigned t = 0;
  for (const unsigned b : bw) t += b;
  return t;
}

namespace {

/// Working state of one candidate mapping: a CoreLoad per core (the
/// incremental membership/Σ Θ/Π accounts) plus its partition counts.
struct CoreState {
  std::vector<CoreLoad> cores;
  std::vector<unsigned> cache;
  std::vector<unsigned> bw;
};

double util_of(CoreState& st, std::size_t core) {
  return st.cores[core].utilization(st.cache[core], st.bw[core]);
}

bool sched_of(CoreState& st, std::size_t core) {
  return st.cores[core].schedulable(st.cache[core], st.bw[core]);
}

bool all_schedulable(CoreState& st) {
  for (std::size_t i = 0; i < st.cores.size(); ++i)
    if (!sched_of(st, i)) return false;
  return true;
}

/// Phase 1: pack clusters (in permutation order) worst-fit decreasing by
/// reference utilization onto m cores.
CoreState phase1_pack(std::span<const model::Vcpu> vcpus,
                      const std::vector<std::vector<std::size_t>>& clusters,
                      const std::vector<std::size_t>& perm, unsigned m,
                      const model::ResourceGrid& grid) {
  CoreState st;
  st.cores.assign(m, CoreLoad(vcpus, grid));
  st.cache.assign(m, grid.c_min);
  st.bw.assign(m, grid.b_min);

  std::vector<double> ref_load(m, 0);
  for (const std::size_t ci : perm) {
    std::vector<std::size_t> order = clusters[ci];
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return vcpus[a].reference_utilization() >
             vcpus[b].reference_utilization();
    });
    for (const std::size_t v : order) {
      const std::size_t least = packing::worst_fit_bin(ref_load);
      st.cores[least].add(v);
      ref_load[least] += vcpus[v].reference_utilization();
    }
  }
  return st;
}

/// Phase 2: grow per-core cache/BW from (C_min, B_min), always granting the
/// partition with the largest utilization reduction on an unschedulable
/// core (or cycling grants round-robin under the ablation policy).
/// Returns true iff the system became schedulable.
bool phase2_resources(CoreState& st, const model::PlatformSpec& platform,
                      HvAllocConfig::Phase2Policy policy) {
  const auto& grid = platform.grid;
  const unsigned m = static_cast<unsigned>(st.cores.size());
  for (std::size_t i = 0; i < m; ++i) {
    st.cache[i] = grid.c_min;
    st.bw[i] = grid.b_min;
  }
  unsigned pool_c = platform.total_cache() - m * grid.c_min;
  unsigned pool_b = platform.total_bw() - m * grid.b_min;

  std::size_t rr_cursor = 0;  // round-robin state for the ablation policy
  while (true) {
    std::vector<std::size_t> unsched;
    for (std::size_t i = 0; i < m; ++i)
      if (!sched_of(st, i)) unsched.push_back(i);
    if (unsched.empty()) return true;

    if (policy == HvAllocConfig::Phase2Policy::kRoundRobin) {
      // Ablation: grant alternating cache/BW partitions to unschedulable
      // cores in cyclic order, ignoring the utilization gain.
      bool granted = false;
      for (std::size_t attempt = 0;
           attempt < 2 * unsched.size() && !granted; ++attempt) {
        const std::size_t i = unsched[(rr_cursor / 2) % unsched.size()];
        const bool want_cache = rr_cursor % 2 == 0;
        ++rr_cursor;
        if (want_cache && pool_c > 0 && st.cache[i] < grid.c_max) {
          ++st.cache[i];
          --pool_c;
          granted = true;
        } else if (!want_cache && pool_b > 0 && st.bw[i] < grid.b_max) {
          ++st.bw[i];
          --pool_b;
          granted = true;
        }
        if (granted)
          if (auto* ctr = util::alloc_counters()) ++ctr->partition_grants;
      }
      if (!granted) return false;  // pools dry or cores saturated
      continue;
    }

    // The grant with the highest utilization reduction, over all
    // unschedulable cores and both resource kinds.
    double best_gain = 0;
    std::size_t best_core = m;
    bool best_is_cache = false;
    for (const std::size_t i : unsched) {
      const double u_now = util_of(st, i);
      if (pool_c > 0 && st.cache[i] < grid.c_max) {
        const double gain =
            u_now - st.cores[i].utilization(st.cache[i] + 1, st.bw[i]);
        if (gain > best_gain) {
          best_gain = gain;
          best_core = i;
          best_is_cache = true;
        }
      }
      if (pool_b > 0 && st.bw[i] < grid.b_max) {
        const double gain =
            u_now - st.cores[i].utilization(st.cache[i], st.bw[i] + 1);
        if (gain > best_gain) {
          best_gain = gain;
          best_core = i;
          best_is_cache = false;
        }
      }
    }
    if (best_core == m || best_gain <= 1e-15) return false;  // no impact
    if (auto* ctr = util::alloc_counters()) ++ctr->partition_grants;
    if (best_is_cache) {
      ++st.cache[best_core];
      --pool_c;
    } else {
      ++st.bw[best_core];
      --pool_b;
    }
  }
}

/// Phase 3: migrate VCPUs away from unschedulable cores. Destination is the
/// schedulable core least utilized after the move; the migrated VCPU is the
/// largest one the destination can absorb while staying schedulable, else
/// the smallest VCPU on the overloaded core. Returns true iff any VCPU
/// moved.
bool phase3_balance(std::span<const model::Vcpu> vcpus, CoreState& st) {
  const std::size_t m = st.cores.size();
  bool moved_any = false;

  for (std::size_t i = 0; i < m; ++i) {
    unsigned guard = 0;
    while (!sched_of(st, i) && !st.cores[i].empty() && guard++ < 64) {
      // Least-utilized currently-schedulable destination (≠ i).
      std::size_t dest = m;
      double dest_util = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < m; ++j) {
        if (j == i || !sched_of(st, j)) continue;
        const double u = util_of(st, j);
        if (u < dest_util) {
          dest_util = u;
          dest = j;
        }
      }
      if (dest == m) return moved_any;  // nowhere to migrate

      // Largest VCPU the destination absorbs while staying schedulable.
      const auto& src = st.cores[i].members();
      std::size_t pick_pos = src.size();
      double pick_util = -1;
      std::size_t fallback_pos = 0;
      double fallback_util = std::numeric_limits<double>::infinity();
      for (std::size_t p = 0; p < src.size(); ++p) {
        const double uv =
            vcpus[src[p]].utilization(st.cache[i], st.bw[i]);
        const double uv_dest =
            vcpus[src[p]].utilization(st.cache[dest], st.bw[dest]);
        if (dest_util + uv_dest <= 1.0 && uv > pick_util) {
          pick_util = uv;
          pick_pos = p;
        }
        if (uv < fallback_util) {
          fallback_util = uv;
          fallback_pos = p;
        }
      }
      const std::size_t pos = pick_pos < src.size() ? pick_pos : fallback_pos;
      st.cores[dest].add(st.cores[i].remove_at(pos));
      moved_any = true;
      if (auto* ctr = util::alloc_counters()) ++ctr->vcpu_migrations;
    }
  }
  return moved_any;
}

HvAllocResult to_result(CoreState&& st, bool schedulable) {
  HvAllocResult res;
  res.schedulable = schedulable;
  res.cores_used = static_cast<unsigned>(st.cores.size());
  res.vcpus_on_core.reserve(st.cores.size());
  for (const auto& core : st.cores) res.vcpus_on_core.push_back(core.members());
  res.cache = std::move(st.cache);
  res.bw = std::move(st.bw);
  return res;
}

}  // namespace

namespace {

/// RAII wall timer adding its scope's duration to an AllocCounters field.
class PhaseTimer {
 public:
  explicit PhaseTimer(double util::AllocCounters::* field)
      : field_(field), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    if (auto* ctr = util::alloc_counters())
      ctr->*field_ += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double util::AllocCounters::* field_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

HvAllocResult allocate_heuristic(std::span<const model::Vcpu> vcpus,
                                 const model::PlatformSpec& platform,
                                 const HvAllocConfig& cfg, util::Rng& rng) {
  VC2M_CHECK(!vcpus.empty());
  PhaseTimer timer(&util::AllocCounters::hv_alloc_seconds);
  VC2M_PROFILE_PHASE("hv_alloc");
  const auto& grid = platform.grid;

  // Fast infeasibility screens at the full allocation (C, B).
  double best_total = 0;
  for (const auto& v : vcpus) {
    const double u = v.utilization(grid.c_max, grid.b_max);
    if (u > 1.0) return HvAllocResult{};  // one VCPU exceeds any core
    best_total += u;
  }
  if (best_total > static_cast<double>(platform.cores))
    return HvAllocResult{};

  // Cluster VCPUs by slowdown vector once; reused for every core count.
  const std::size_t k =
      cfg.cluster_vcpus ? std::min(cfg.clusters, vcpus.size()) : 1;
  std::vector<std::vector<double>> points;
  points.reserve(vcpus.size());
  for (const auto& v : vcpus) points.push_back(v.slowdown().flat());
  const auto clusters = [&] {
    VC2M_PROFILE_PHASE("cluster");
    return cluster_members(kmeans(points, k, rng), k);
  }();

  for (unsigned m = 1; m <= platform.cores; ++m) {
    if (m * grid.c_min > platform.total_cache() ||
        m * grid.b_min > platform.total_bw())
      break;  // larger m cannot satisfy the per-core minimums either
    for (unsigned perm_iter = 0; perm_iter < cfg.max_permutations;
         ++perm_iter) {
      CoreState st = [&] {
        VC2M_PROFILE_PHASE("phase1_pack");
        return phase1_pack(vcpus, clusters, rng.permutation(k), m, grid);
      }();
      if (auto* ctr = util::alloc_counters()) ++ctr->candidate_packings;
      for (unsigned round = 0; round < cfg.max_balance_rounds; ++round) {
        bool feasible;
        {
          VC2M_PROFILE_PHASE("phase2_resources");
          feasible = phase2_resources(st, platform, cfg.phase2);
        }
        if (feasible) return to_result(std::move(st), true);
        if (!cfg.load_balance) break;  // ablation: no Phase 3
        bool improved;
        {
          VC2M_PROFILE_PHASE("phase3_balance");
          improved = phase3_balance(vcpus, st);
        }
        if (!improved) break;  // no benefit in balancing
      }
    }
  }
  return HvAllocResult{};
}

HvAllocResult allocate_even_partition(std::span<const model::Vcpu> vcpus,
                                      const model::PlatformSpec& platform) {
  VC2M_CHECK(!vcpus.empty());
  PhaseTimer timer(&util::AllocCounters::hv_alloc_seconds);
  VC2M_PROFILE_PHASE("hv_alloc");
  VC2M_PROFILE_PHASE("even_partition");
  const auto& grid = platform.grid;
  const unsigned m = platform.cores;
  const unsigned c_even =
      std::max(grid.c_min, platform.total_cache() / m);
  const unsigned b_even = std::max(grid.b_min, platform.total_bw() / m);
  VC2M_CHECK_MSG(m * grid.c_min <= platform.total_cache() &&
                     m * grid.b_min <= platform.total_bw(),
                 "platform cannot give every core the minimum partitions");

  std::vector<double> weights;
  weights.reserve(vcpus.size());
  for (const auto& v : vcpus) weights.push_back(v.utilization(c_even, b_even));

  auto bins = packing::best_fit_decreasing(weights, 1.0, m);
  if (!bins) return HvAllocResult{};

  CoreState st;
  st.cores.reserve(bins->size());
  for (const auto& bin : *bins) st.cores.emplace_back(vcpus, grid, bin);
  st.cache.assign(st.cores.size(), c_even);
  st.bw.assign(st.cores.size(), b_even);
  const bool ok = all_schedulable(st);
  return to_result(std::move(st), ok);
}

}  // namespace vc2m::core
