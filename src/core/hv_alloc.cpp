#include "core/hv_alloc.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>

#include "analysis/schedulability.h"
#include "core/core_load.h"
#include "core/kmeans.h"
#include "core/packing.h"
#include "obs/decision_log.h"
#include "util/error.h"
#include "util/instrument.h"
#include "util/phase_profiler.h"

namespace vc2m::core {

unsigned HvAllocResult::total_cache() const {
  unsigned t = 0;
  for (const unsigned c : cache) t += c;
  return t;
}

unsigned HvAllocResult::total_bw() const {
  unsigned t = 0;
  for (const unsigned b : bw) t += b;
  return t;
}

namespace {

/// Working state of one candidate mapping: a CoreLoad per core (the
/// incremental membership/Σ Θ/Π accounts) plus its partition counts.
struct CoreState {
  std::vector<CoreLoad> cores;
  std::vector<unsigned> cache;
  std::vector<unsigned> bw;
};

double util_of(CoreState& st, std::size_t core) {
  return st.cores[core].utilization(st.cache[core], st.bw[core]);
}

bool sched_of(CoreState& st, std::size_t core) {
  return st.cores[core].schedulable(st.cache[core], st.bw[core]);
}

bool all_schedulable(CoreState& st) {
  for (std::size_t i = 0; i < st.cores.size(); ++i)
    if (!sched_of(st, i)) return false;
  return true;
}

/// Record why a grant loop stopped: which pool (or gain) bound, and how far
/// the closest unschedulable core still was from Σ Θ/Π ≤ 1.
void log_grant_exhausted(obs::DecisionLog& log, CoreState& st,
                         const std::vector<std::size_t>& unsched,
                         unsigned pool_c, unsigned pool_b,
                         const model::ResourceGrid& grid) {
  bool could_c = false, could_b = false;
  for (const std::size_t i : unsched) {
    could_c = could_c || (pool_c > 0 && st.cache[i] < grid.c_max);
    could_b = could_b || (pool_b > 0 && st.bw[i] < grid.b_max);
  }
  double min_excess = std::numeric_limits<double>::infinity();
  std::size_t closest = unsched.front();
  for (const std::size_t i : unsched) {
    const double excess = util_of(st, i) - 1.0;
    if (excess < min_excess) {
      min_excess = excess;
      closest = i;
    }
  }
  obs::DecisionEvent e;
  e.kind = obs::DecisionKind::kGrantExhausted;
  e.constraint = (could_c || could_b)
                     ? obs::DecisionConstraint::kNoBeneficialGrant
                     : (pool_c == 0 ? obs::DecisionConstraint::kCachePoolExhausted
                                    : obs::DecisionConstraint::kBwPoolExhausted);
  e.core = static_cast<std::int32_t>(closest);
  e.cache = static_cast<std::int32_t>(pool_c);
  e.bw = static_cast<std::int32_t>(pool_b);
  e.value = util_of(st, closest);
  e.margin = std::max(0.0, min_excess);
  log.emit(e);
}

/// Phase 1: pack clusters (in permutation order) worst-fit decreasing by
/// reference utilization onto m cores.
CoreState phase1_pack(std::span<const model::Vcpu> vcpus,
                      const std::vector<std::vector<std::size_t>>& clusters,
                      const std::vector<std::size_t>& perm, unsigned m,
                      const model::ResourceGrid& grid) {
  CoreState st;
  st.cores.assign(m, CoreLoad(vcpus, grid));
  st.cache.assign(m, grid.c_min);
  st.bw.assign(m, grid.b_min);

  std::vector<double> ref_load(m, 0);
  for (const std::size_t ci : perm) {
    std::vector<std::size_t> order = clusters[ci];
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return vcpus[a].reference_utilization() >
             vcpus[b].reference_utilization();
    });
    for (const std::size_t v : order) {
      const std::size_t least = packing::worst_fit_bin(ref_load);
      st.cores[least].add(v);
      ref_load[least] += vcpus[v].reference_utilization();
    }
  }
  return st;
}

/// Phase 2: grow per-core cache/BW from (C_min, B_min), always granting the
/// partition with the largest utilization reduction on an unschedulable
/// core (or cycling grants round-robin under the ablation policy).
/// Returns true iff the system became schedulable.
bool phase2_resources(CoreState& st, const model::PlatformSpec& platform,
                      HvAllocConfig::Phase2Policy policy) {
  const auto& grid = platform.grid;
  const unsigned m = static_cast<unsigned>(st.cores.size());
  for (std::size_t i = 0; i < m; ++i) {
    st.cache[i] = grid.c_min;
    st.bw[i] = grid.b_min;
  }
  unsigned pool_c = platform.total_cache() - m * grid.c_min;
  unsigned pool_b = platform.total_bw() - m * grid.b_min;

  std::size_t rr_cursor = 0;  // round-robin state for the ablation policy
  std::vector<std::size_t> unsched;  // reused across grant iterations
  unsched.reserve(m);
  while (true) {
    unsched.clear();
    for (std::size_t i = 0; i < m; ++i)
      if (!sched_of(st, i)) unsched.push_back(i);
    if (unsched.empty()) return true;

    if (policy == HvAllocConfig::Phase2Policy::kRoundRobin) {
      // Ablation: grant alternating cache/BW partitions to unschedulable
      // cores in cyclic order, ignoring the utilization gain.
      bool granted = false;
      for (std::size_t attempt = 0;
           attempt < 2 * unsched.size() && !granted; ++attempt) {
        const std::size_t i = unsched[(rr_cursor / 2) % unsched.size()];
        const bool want_cache = rr_cursor % 2 == 0;
        ++rr_cursor;
        if (want_cache && pool_c > 0 && st.cache[i] < grid.c_max) {
          ++st.cache[i];
          --pool_c;
          granted = true;
        } else if (!want_cache && pool_b > 0 && st.bw[i] < grid.b_max) {
          ++st.bw[i];
          --pool_b;
          granted = true;
        }
        if (granted) {
          if (auto* ctr = util::alloc_counters()) ++ctr->partition_grants;
          if (auto* log = obs::decision_log()) {
            obs::DecisionEvent e;
            e.kind = obs::DecisionKind::kPartitionGrant;
            e.accepted = true;
            e.core = static_cast<std::int32_t>(i);
            e.cache = static_cast<std::int32_t>(st.cache[i]);
            e.bw = static_cast<std::int32_t>(st.bw[i]);
            e.value = util_of(st, i);
            log->emit(e);
          }
        }
      }
      if (!granted) {
        if (auto* log = obs::decision_log())
          log_grant_exhausted(*log, st, unsched, pool_c, pool_b, grid);
        return false;  // pools dry or cores saturated
      }
      continue;
    }

    // The grant with the highest utilization reduction, over all
    // unschedulable cores and both resource kinds.
    double best_gain = 0;
    std::size_t best_core = m;
    bool best_is_cache = false;
    for (const std::size_t i : unsched) {
      const double u_now = util_of(st, i);
      if (pool_c > 0 && st.cache[i] < grid.c_max) {
        const double gain =
            u_now - st.cores[i].utilization(st.cache[i] + 1, st.bw[i]);
        if (gain > best_gain) {
          best_gain = gain;
          best_core = i;
          best_is_cache = true;
        }
      }
      if (pool_b > 0 && st.bw[i] < grid.b_max) {
        const double gain =
            u_now - st.cores[i].utilization(st.cache[i], st.bw[i] + 1);
        if (gain > best_gain) {
          best_gain = gain;
          best_core = i;
          best_is_cache = false;
        }
      }
    }
    if (best_core == m || best_gain <= 1e-15) {  // no impact
      if (auto* log = obs::decision_log())
        log_grant_exhausted(*log, st, unsched, pool_c, pool_b, grid);
      return false;
    }
    if (auto* ctr = util::alloc_counters()) ++ctr->partition_grants;
    if (best_is_cache) {
      ++st.cache[best_core];
      --pool_c;
    } else {
      ++st.bw[best_core];
      --pool_b;
    }
    if (auto* log = obs::decision_log()) {
      obs::DecisionEvent e;
      e.kind = obs::DecisionKind::kPartitionGrant;
      e.accepted = true;
      e.core = static_cast<std::int32_t>(best_core);
      e.cache = static_cast<std::int32_t>(st.cache[best_core]);
      e.bw = static_cast<std::int32_t>(st.bw[best_core]);
      e.value = best_gain;  // utilization reduction bought by this grant
      log->emit(e);
    }
  }
}

/// Phase 3: migrate VCPUs away from unschedulable cores. Destination is the
/// schedulable core least utilized after the move; the migrated VCPU is the
/// largest one the destination can absorb while staying schedulable, else
/// the smallest VCPU on the overloaded core. Returns true iff any VCPU
/// moved.
bool phase3_balance(std::span<const model::Vcpu> vcpus, CoreState& st) {
  const std::size_t m = st.cores.size();
  bool moved_any = false;

  for (std::size_t i = 0; i < m; ++i) {
    unsigned guard = 0;
    while (!sched_of(st, i) && !st.cores[i].empty() && guard++ < 64) {
      // Least-utilized currently-schedulable destination (≠ i).
      std::size_t dest = m;
      double dest_util = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < m; ++j) {
        if (j == i || !sched_of(st, j)) continue;
        const double u = util_of(st, j);
        if (u < dest_util) {
          dest_util = u;
          dest = j;
        }
      }
      if (dest == m) {  // nowhere to migrate
        if (auto* log = obs::decision_log()) {
          obs::DecisionEvent e;
          e.kind = obs::DecisionKind::kMigration;
          e.constraint = obs::DecisionConstraint::kCoreOverUtilized;
          e.core = static_cast<std::int32_t>(i);
          e.value = util_of(st, i);
          e.margin = std::max(0.0, e.value - 1.0);
          log->emit(e);
        }
        return moved_any;
      }

      // Largest VCPU the destination absorbs while staying schedulable.
      const auto& src = st.cores[i].members();
      std::size_t pick_pos = src.size();
      double pick_util = -1;
      std::size_t fallback_pos = 0;
      double fallback_util = std::numeric_limits<double>::infinity();
      for (std::size_t p = 0; p < src.size(); ++p) {
        const double uv =
            vcpus[src[p]].utilization(st.cache[i], st.bw[i]);
        const double uv_dest =
            vcpus[src[p]].utilization(st.cache[dest], st.bw[dest]);
        if (dest_util + uv_dest <= 1.0 && uv > pick_util) {
          pick_util = uv;
          pick_pos = p;
        }
        if (uv < fallback_util) {
          fallback_util = uv;
          fallback_pos = p;
        }
      }
      const std::size_t pos = pick_pos < src.size() ? pick_pos : fallback_pos;
      const std::size_t moved = st.cores[i].remove_at(pos);
      st.cores[dest].add(moved);
      moved_any = true;
      if (auto* ctr = util::alloc_counters()) ++ctr->vcpu_migrations;
      if (auto* log = obs::decision_log()) {
        obs::DecisionEvent e;
        e.kind = obs::DecisionKind::kMigration;
        e.accepted = true;
        e.entity = static_cast<std::int32_t>(moved);
        e.core = static_cast<std::int32_t>(dest);
        e.value = vcpus[moved].utilization(st.cache[dest], st.bw[dest]);
        log->emit(e);
      }
    }
  }
  return moved_any;
}

HvAllocResult to_result(CoreState&& st, bool schedulable) {
  HvAllocResult res;
  res.schedulable = schedulable;
  res.cores_used = static_cast<unsigned>(st.cores.size());
  res.vcpus_on_core.reserve(st.cores.size());
  for (const auto& core : st.cores) res.vcpus_on_core.push_back(core.members());
  res.cache = std::move(st.cache);
  res.bw = std::move(st.bw);
  return res;
}

}  // namespace

namespace {

/// RAII wall timer adding its scope's duration to an AllocCounters field.
class PhaseTimer {
 public:
  explicit PhaseTimer(double util::AllocCounters::* field)
      : field_(field), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    if (auto* ctr = util::alloc_counters())
      ctr->*field_ += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double util::AllocCounters::* field_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

HvAllocResult allocate_heuristic(std::span<const model::Vcpu> vcpus,
                                 const model::PlatformSpec& platform,
                                 const HvAllocConfig& cfg, util::Rng& rng) {
  VC2M_CHECK(!vcpus.empty());
  PhaseTimer timer(&util::AllocCounters::hv_alloc_seconds);
  VC2M_PROFILE_PHASE("hv_alloc");
  const auto& grid = platform.grid;

  // Fast infeasibility screens at the full allocation (C, B).
  double best_total = 0;
  bool screened_out = false;
  for (std::size_t vi = 0; vi < vcpus.size(); ++vi) {
    const double u = vcpus[vi].utilization(grid.c_max, grid.b_max);
    if (u > 1.0) {  // one VCPU exceeds any core
      auto* log = obs::decision_log();
      if (!log) return HvAllocResult{};
      // Recording on: keep scanning so every oversized VCPU (and its VM)
      // gets a rejection event — same verdict, complete provenance.
      obs::DecisionEvent e;
      e.kind = obs::DecisionKind::kVcpuScreen;
      e.constraint = obs::DecisionConstraint::kVcpuExceedsCore;
      e.vm = vcpus[vi].vm;
      e.entity = static_cast<std::int32_t>(vi);
      e.cache = static_cast<std::int32_t>(grid.c_max);
      e.bw = static_cast<std::int32_t>(grid.b_max);
      e.value = u;
      e.margin = u - 1.0;
      log->emit(e);
      screened_out = true;
    }
    best_total += u;
  }
  if (screened_out) return HvAllocResult{};
  if (best_total > static_cast<double>(platform.cores)) {
    if (auto* log = obs::decision_log()) {
      obs::DecisionEvent e;
      e.kind = obs::DecisionKind::kCapacityScreen;
      e.constraint = obs::DecisionConstraint::kUtilizationExceedsCores;
      e.core = static_cast<std::int32_t>(platform.cores);
      e.value = best_total;
      e.margin = best_total - static_cast<double>(platform.cores);
      log->emit(e);
    }
    return HvAllocResult{};
  }

  // Cluster VCPUs by slowdown vector once; reused for every core count.
  const std::size_t k =
      cfg.cluster_vcpus ? std::min(cfg.clusters, vcpus.size()) : 1;
  std::vector<std::vector<double>> points;
  points.reserve(vcpus.size());
  for (const auto& v : vcpus) points.push_back(v.slowdown().flat());
  const auto clusters = [&] {
    VC2M_PROFILE_PHASE("cluster");
    return cluster_members(kmeans(points, k, rng), k);
  }();

  for (unsigned m = 1; m <= platform.cores; ++m) {
    if (m * grid.c_min > platform.total_cache() ||
        m * grid.b_min > platform.total_bw())
      break;  // larger m cannot satisfy the per-core minimums either
    for (unsigned perm_iter = 0; perm_iter < cfg.max_permutations;
         ++perm_iter) {
      CoreState st = [&] {
        VC2M_PROFILE_PHASE("phase1_pack");
        return phase1_pack(vcpus, clusters, rng.permutation(k), m, grid);
      }();
      if (auto* ctr = util::alloc_counters()) ++ctr->candidate_packings;
      if (auto* log = obs::decision_log()) {
        obs::DecisionEvent e;
        e.kind = obs::DecisionKind::kPackingCandidate;
        e.accepted = true;
        e.entity = static_cast<std::int32_t>(perm_iter);
        e.core = static_cast<std::int32_t>(m);
        e.value = static_cast<double>(vcpus.size());
        log->emit(e);
      }
      for (unsigned round = 0; round < cfg.max_balance_rounds; ++round) {
        bool feasible;
        {
          VC2M_PROFILE_PHASE("phase2_resources");
          feasible = phase2_resources(st, platform, cfg.phase2);
        }
        if (feasible) return to_result(std::move(st), true);
        if (!cfg.load_balance) break;  // ablation: no Phase 3
        bool improved;
        {
          VC2M_PROFILE_PHASE("phase3_balance");
          improved = phase3_balance(vcpus, st);
        }
        if (!improved) break;  // no benefit in balancing
      }
    }
  }
  if (auto* log = obs::decision_log()) {
    // Every candidate at every core count failed; the per-candidate
    // kGrantExhausted events above carry the specific margins.
    obs::DecisionEvent e;
    e.kind = obs::DecisionKind::kHvAttempt;
    e.constraint = obs::DecisionConstraint::kCoreLimit;
    e.core = static_cast<std::int32_t>(platform.cores);
    e.value = best_total;
    log->emit(e);
  }
  return HvAllocResult{};
}

HvAllocResult allocate_even_partition(std::span<const model::Vcpu> vcpus,
                                      const model::PlatformSpec& platform) {
  VC2M_CHECK(!vcpus.empty());
  PhaseTimer timer(&util::AllocCounters::hv_alloc_seconds);
  VC2M_PROFILE_PHASE("hv_alloc");
  VC2M_PROFILE_PHASE("even_partition");
  const auto& grid = platform.grid;
  const unsigned m = platform.cores;
  const unsigned c_even =
      std::max(grid.c_min, platform.total_cache() / m);
  const unsigned b_even = std::max(grid.b_min, platform.total_bw() / m);
  VC2M_CHECK_MSG(m * grid.c_min <= platform.total_cache() &&
                     m * grid.b_min <= platform.total_bw(),
                 "platform cannot give every core the minimum partitions");

  std::vector<double> weights;
  weights.reserve(vcpus.size());
  for (const auto& v : vcpus) weights.push_back(v.utilization(c_even, b_even));

  auto bins = packing::best_fit_decreasing(weights, 1.0, m);
  if (!bins) {
    if (auto* log = obs::decision_log()) {
      double w_max = 0;
      std::size_t worst = 0;
      for (std::size_t vi = 0; vi < weights.size(); ++vi)
        if (weights[vi] > w_max) {
          w_max = weights[vi];
          worst = vi;
        }
      obs::DecisionEvent e;
      e.kind = obs::DecisionKind::kBinPack;
      e.constraint = w_max > 1.0
                         ? obs::DecisionConstraint::kVcpuExceedsCore
                         : obs::DecisionConstraint::kCoreLimit;
      e.vm = vcpus[worst].vm;
      e.entity = static_cast<std::int32_t>(worst);
      e.core = static_cast<std::int32_t>(m);
      e.cache = static_cast<std::int32_t>(c_even);
      e.bw = static_cast<std::int32_t>(b_even);
      e.value = w_max;
      e.margin = std::max(0.0, w_max - 1.0);
      log->emit(e);
    }
    return HvAllocResult{};
  }

  CoreState st;
  st.cores.reserve(bins->size());
  for (const auto& bin : *bins) st.cores.emplace_back(vcpus, grid, bin);
  st.cache.assign(st.cores.size(), c_even);
  st.bw.assign(st.cores.size(), b_even);
  const bool ok = all_schedulable(st);
  if (!ok) {
    if (auto* log = obs::decision_log()) {
      for (std::size_t i = 0; i < st.cores.size(); ++i) {
        if (sched_of(st, i)) continue;
        obs::DecisionEvent e;
        e.kind = obs::DecisionKind::kHvAttempt;
        e.constraint = obs::DecisionConstraint::kCoreOverUtilized;
        e.core = static_cast<std::int32_t>(i);
        e.cache = static_cast<std::int32_t>(c_even);
        e.bw = static_cast<std::int32_t>(b_even);
        e.value = util_of(st, i);
        e.margin = std::max(0.0, e.value - 1.0);
        // The VM of the core's heaviest VCPU: the most likely culprit.
        double u_max = -1;
        for (const std::size_t v : st.cores[i].members()) {
          const double uv = vcpus[v].utilization(c_even, b_even);
          if (uv > u_max) {
            u_max = uv;
            e.vm = vcpus[v].vm;
            e.entity = static_cast<std::int32_t>(v);
          }
        }
        log->emit(e);
      }
    }
  }
  return to_result(std::move(st), ok);
}

}  // namespace vc2m::core
