#include "core/packing.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/decision_log.h"
#include "util/error.h"

namespace vc2m::core::packing {

std::vector<std::size_t> decreasing_order(std::span<const double> weights) {
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return weights[a] > weights[b];
  });
  return order;
}

std::optional<std::vector<std::vector<std::size_t>>> best_fit_decreasing(
    std::span<const double> weights, double capacity, std::size_t max_bins) {
  VC2M_CHECK(capacity > 0);
  for (const double w : weights)
    VC2M_CHECK_MSG(std::isfinite(w) && w >= 0,
                   "best_fit_decreasing weight " << w
                                                 << " is not a finite "
                                                    "non-negative number");
  if (!weights.empty() && max_bins == 0) return std::nullopt;

  std::vector<std::vector<std::size_t>> bins;
  std::vector<double> load;
  for (const std::size_t item : decreasing_order(weights)) {
    // Best fit: the feasible bin with the least residual capacity.
    std::size_t best = bins.size();
    double best_residual = std::numeric_limits<double>::infinity();
    for (std::size_t bi = 0; bi < bins.size(); ++bi) {
      const double residual = capacity - load[bi] - weights[item];
      if (residual >= -1e-12 && residual < best_residual) {
        best_residual = residual;
        best = bi;
      }
    }
    if (best == bins.size()) {
      if (bins.size() >= max_bins || weights[item] > capacity + 1e-12) {
        if (auto* log = obs::decision_log()) {
          obs::DecisionEvent e;
          e.kind = obs::DecisionKind::kBinPack;
          e.entity = static_cast<std::int32_t>(item);
          e.core = static_cast<std::int32_t>(bins.size());
          e.value = weights[item];
          if (weights[item] > capacity + 1e-12) {
            e.constraint = obs::DecisionConstraint::kTaskOverflowsVcpu;
            e.margin = weights[item] - capacity;
          } else {
            // All max_bins bins are open and none fits: short by the gap to
            // the roomiest bin.
            e.constraint = obs::DecisionConstraint::kCoreLimit;
            double max_residual = 0;
            for (const double l : load)
              max_residual = std::max(max_residual, capacity - l);
            e.margin = weights[item] - max_residual;
          }
          log->emit(e);
        }
        return std::nullopt;
      }
      bins.emplace_back();
      load.push_back(0);
    }
    bins[best].push_back(item);
    load[best] += weights[item];
    if (auto* log = obs::decision_log()) {
      obs::DecisionEvent e;
      e.kind = obs::DecisionKind::kBinPack;
      e.accepted = true;
      e.entity = static_cast<std::int32_t>(item);
      e.core = static_cast<std::int32_t>(best);
      e.value = weights[item];
      e.margin = capacity - load[best];  // residual after placement
      log->emit(e);
    }
  }
  return bins;
}

}  // namespace vc2m::core::packing
