#include "core/admission.h"

#include <algorithm>
#include <optional>

#include "analysis/context.h"
#include "core/core_load.h"
#include "obs/decision_log.h"
#include "util/error.h"

namespace vc2m::core {
namespace {

/// Minimal (cache, bw) the core behind `cl` needs to absorb its VCPU set,
/// growing from its current allocation with max-gain grants bounded by the
/// free pools. Returns the final allocation or nullopt. Probing through the
/// CoreLoad lets the grant loop and the candidate comparison reuse each
/// already-summed grid point instead of re-deriving it per probe.
std::optional<std::pair<unsigned, unsigned>> fit_with_grants(
    CoreLoad& cl, unsigned c, unsigned b, unsigned free_c, unsigned free_b,
    const model::ResourceGrid& grid) {
  while (!cl.schedulable(c, b)) {
    double best_gain = 0;
    bool grant_cache = false;
    const double u_now = cl.utilization(c, b);
    if (free_c > 0 && c < grid.c_max) {
      const double gain = u_now - cl.utilization(c + 1, b);
      if (gain > best_gain) {
        best_gain = gain;
        grant_cache = true;
      }
    }
    if (free_b > 0 && b < grid.b_max) {
      const double gain = u_now - cl.utilization(c, b + 1);
      if (gain > best_gain) {
        best_gain = gain;
        grant_cache = false;
      }
    }
    if (best_gain <= 1e-15) return std::nullopt;  // no grant helps
    if (grant_cache) {
      ++c;
      --free_c;
    } else {
      ++b;
      --free_b;
    }
  }
  return std::make_pair(c, b);
}

}  // namespace

AdmitResult admit_vm(const AdmissionState& current,
                     const model::Taskset& vm_tasks, int vm_id,
                     const model::PlatformSpec& platform,
                     const VmAllocConfig& vm_cfg, util::Rng& rng) {
  VC2M_CHECK(!vm_tasks.empty());
  for (const auto& t : vm_tasks)
    VC2M_CHECK_MSG(t.vm == vm_id, "task does not belong to the admitted VM");
  for (const auto& v : current.vcpus)
    VC2M_CHECK_MSG(v.vm != vm_id, "VM id already present");

  AdmitResult result;
  result.request_id = vm_cfg.request_id;
  AdmissionState next = current;
  analysis::AnalysisContext ctx;  // one memo + counter scope per decision
  ctx.set_inner_parallelism(vm_cfg.inner_pool, vm_cfg.inner_jobs);
  ctx.set_request_id(vm_cfg.request_id);

  // Parameterize the new VM's VCPUs.
  std::vector<std::size_t> idx(vm_tasks.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  auto new_vcpus = allocate_vm_heuristic(vm_tasks, idx, vm_cfg, ctx, rng);
  std::sort(new_vcpus.begin(), new_vcpus.end(),
            [](const model::Vcpu& a, const model::Vcpu& b) {
              return a.reference_utilization() > b.reference_utilization();
            });

  const auto& grid = platform.grid;
  unsigned free_c = platform.total_cache() - next.mapping.total_cache();
  unsigned free_b = platform.total_bw() - next.mapping.total_bw();

  for (auto& vcpu : new_vcpus) {
    vcpu.vm = vm_id;
    next.vcpus.push_back(vcpu);
    const std::size_t vi = next.vcpus.size() - 1;

    // Candidate placements compete on pool consumption (partitions newly
    // drawn from the free pools), ties broken toward lower utilization —
    // so a lightly loaded or fresh core beats squeezing onto a hot one
    // with expensive grants.
    std::size_t best_core = next.mapping.cores_used;  // == "open new core"
    bool have_candidate = false;
    std::pair<unsigned, unsigned> best_alloc{0, 0};
    unsigned best_cost = ~0u;
    double best_util = 2.0;
    for (unsigned k = 0; k < next.mapping.cores_used; ++k) {
      CoreLoad with_new(next.vcpus, grid, next.mapping.vcpus_on_core[k]);
      with_new.add(vi);
      const auto fit =
          fit_with_grants(with_new, next.mapping.cache[k],
                          next.mapping.bw[k], free_c, free_b, grid);
      if (auto* log = obs::decision_log()) {
        obs::DecisionEvent e;
        e.kind = obs::DecisionKind::kAdmitPlacement;
        e.vm = vm_id;
        e.entity = static_cast<std::int32_t>(vi);
        e.core = static_cast<std::int32_t>(k);
        if (fit) {
          e.accepted = true;
          e.cache = static_cast<std::int32_t>(fit->first);
          e.bw = static_cast<std::int32_t>(fit->second);
          const double u = with_new.utilization(fit->first, fit->second);
          e.value = u;
          e.margin = 1.0 - u;
        } else {
          // No grant sequence from the current partitions makes the core
          // schedulable with the VCPU added.
          e.constraint = obs::DecisionConstraint::kNoBeneficialGrant;
          e.cache = static_cast<std::int32_t>(next.mapping.cache[k]);
          e.bw = static_cast<std::int32_t>(next.mapping.bw[k]);
          const double u = with_new.utilization(next.mapping.cache[k],
                                                next.mapping.bw[k]);
          e.value = u;
          e.margin = std::max(0.0, u - 1.0);
        }
        log->emit(e);
      }
      if (!fit) continue;
      const unsigned cost = (fit->first - next.mapping.cache[k]) +
                            (fit->second - next.mapping.bw[k]);
      const double u = with_new.utilization(fit->first, fit->second);
      if (cost < best_cost || (cost == best_cost && u < best_util)) {
        best_core = k;
        best_alloc = *fit;
        best_cost = cost;
        best_util = u;
        have_candidate = true;
      }
    }
    if (next.mapping.cores_used < platform.cores && free_c >= grid.c_min &&
        free_b >= grid.b_min) {
      CoreLoad alone(next.vcpus, grid);
      alone.add(vi);
      const auto fit =
          fit_with_grants(alone, grid.c_min, grid.b_min, free_c - grid.c_min,
                          free_b - grid.b_min, grid);
      if (auto* log = obs::decision_log()) {
        obs::DecisionEvent e;
        e.kind = obs::DecisionKind::kAdmitPlacement;
        e.vm = vm_id;
        e.entity = static_cast<std::int32_t>(vi);
        e.core = static_cast<std::int32_t>(next.mapping.cores_used);  // new
        if (fit) {
          e.accepted = true;
          e.cache = static_cast<std::int32_t>(fit->first);
          e.bw = static_cast<std::int32_t>(fit->second);
          const double u = alone.utilization(fit->first, fit->second);
          e.value = u;
          e.margin = 1.0 - u;
        } else {
          e.constraint = obs::DecisionConstraint::kNoBeneficialGrant;
          e.cache = static_cast<std::int32_t>(grid.c_min);
          e.bw = static_cast<std::int32_t>(grid.b_min);
          const double u = alone.utilization(grid.c_min, grid.b_min);
          e.value = u;
          e.margin = std::max(0.0, u - 1.0);
        }
        log->emit(e);
      }
      if (fit) {
        const unsigned cost = fit->first + fit->second;
        const double u = alone.utilization(fit->first, fit->second);
        if (cost < best_cost || (cost == best_cost && u < best_util)) {
          best_core = next.mapping.cores_used;
          best_alloc = *fit;
          have_candidate = true;
        }
      }
    }
    if (!have_candidate) {  // rejection: `current` untouched
      if (auto* log = obs::decision_log()) {
        obs::DecisionEvent e;
        e.kind = obs::DecisionKind::kAdmitVerdict;
        e.vm = vm_id;
        e.entity = static_cast<std::int32_t>(vi);
        e.value = next.vcpus[vi].reference_utilization();
        if (next.mapping.cores_used >= platform.cores) {
          e.constraint = obs::DecisionConstraint::kCoreLimit;
        } else if (free_c < grid.c_min) {
          e.constraint = obs::DecisionConstraint::kCachePoolExhausted;
          e.margin = static_cast<double>(grid.c_min - free_c);
        } else if (free_b < grid.b_min) {
          e.constraint = obs::DecisionConstraint::kBwPoolExhausted;
          e.margin = static_cast<double>(grid.b_min - free_b);
        } else {
          e.constraint = obs::DecisionConstraint::kNoBeneficialGrant;
        }
        log->emit(e);
      }
      return result;
    }

    if (best_core < next.mapping.cores_used) {
      free_c -= best_alloc.first - next.mapping.cache[best_core];
      free_b -= best_alloc.second - next.mapping.bw[best_core];
      next.mapping.cache[best_core] = best_alloc.first;
      next.mapping.bw[best_core] = best_alloc.second;
      next.mapping.vcpus_on_core[best_core].push_back(vi);
    } else {
      free_c -= best_alloc.first;
      free_b -= best_alloc.second;
      next.mapping.vcpus_on_core.push_back({vi});
      next.mapping.cache.push_back(best_alloc.first);
      next.mapping.bw.push_back(best_alloc.second);
      ++next.mapping.cores_used;
    }
  }

  if (auto* log = obs::decision_log()) {
    obs::DecisionEvent e;
    e.kind = obs::DecisionKind::kAdmitVerdict;
    e.accepted = true;
    e.vm = vm_id;
    e.core = static_cast<std::int32_t>(next.mapping.cores_used);
    e.value = static_cast<double>(new_vcpus.size());
    log->emit(e);
  }
  next.mapping.schedulable = true;
  result.admitted = true;
  result.state = std::move(next);
  return result;
}

AdmissionState remove_vm(const AdmissionState& current, int vm_id) {
  AdmissionState next;
  next.mapping = current.mapping;

  // Compact the VCPU vector; remap indices in the core lists.
  std::vector<std::size_t> remap(current.vcpus.size(),
                                 current.vcpus.size());
  for (std::size_t i = 0; i < current.vcpus.size(); ++i) {
    if (current.vcpus[i].vm == vm_id) continue;
    remap[i] = next.vcpus.size();
    next.vcpus.push_back(current.vcpus[i]);
  }
  VC2M_CHECK_MSG(next.vcpus.size() < current.vcpus.size(),
                 "VM id not present");

  for (auto& core : next.mapping.vcpus_on_core) {
    std::vector<std::size_t> kept;
    for (const std::size_t v : core)
      if (remap[v] < current.vcpus.size()) kept.push_back(remap[v]);
    core = std::move(kept);
  }
  // Trim empty trailing cores (interior cores keep their partitions —
  // shrinking them would perturb running VMs' cache contents).
  while (!next.mapping.vcpus_on_core.empty() &&
         next.mapping.vcpus_on_core.back().empty()) {
    next.mapping.vcpus_on_core.pop_back();
    next.mapping.cache.pop_back();
    next.mapping.bw.pop_back();
    --next.mapping.cores_used;
  }
  next.mapping.schedulable = true;
  return next;
}

AdmitResult resize_vm(const AdmissionState& current,
                      const model::Taskset& new_tasks, int vm_id,
                      const model::PlatformSpec& platform,
                      const VmAllocConfig& vm_cfg, util::Rng& rng) {
  bool present = false;
  for (const auto& v : current.vcpus) present = present || v.vm == vm_id;
  VC2M_CHECK_MSG(present, "resize: VM id not present");
  // remove_vm and admit_vm are both purely functional, so the rollback on
  // rejection is the absence of an assignment: `current` still holds the
  // original VM and nothing observed the intermediate removed state.
  const AdmissionState without = remove_vm(current, vm_id);
  return admit_vm(without, new_tasks, vm_id, platform, vm_cfg, rng);
}

}  // namespace vc2m::core
