// VM-level resource allocation (§4.2): tasks → VCPUs and VCPU parameters.
//
// The heuristic path clusters a VM's tasks by slowdown vector (so tasks
// sharing a VCPU — and hence eventually a core — make similar use of the
// cache/BW granted to that core), distributes the VM's VCPUs over the
// clusters in proportion to cluster load, and packs each cluster's tasks
// onto its VCPUs worst-fit in decreasing reference utilization so that all
// VCPUs carry similar load. VCPU parameters come from one of:
//   - Theorem 1 (flattening: one task per VCPU, Π = p, Θ(c,b) = e(c,b)),
//   - Theorem 2 (well-regulated VCPU, Π = min p_i, Θ = Π·Σ e_i/p_i), or
//   - the existing CSA [13] (PRM minimum budget per grid point) for the
//     Heuristic (existing CSA) comparison solution.
//
// The existing-CSA paths take an analysis::AnalysisContext: budget surfaces
// are memoized there and each grid point's binary search is bounded by the
// already-computed neighbor budgets (surfaces are non-increasing in cache
// and BW), cutting demand-bound evaluations without changing any result.
// The context-free overloads run with a private context.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "analysis/context.h"
#include "core/packing.h"
#include "model/task.h"
#include "util/rng.h"

namespace vc2m::util {
class ThreadPool;
}

namespace vc2m::core {

enum class VcpuAnalysis {
  kFlattening,   ///< Theorem 1
  kRegulated,    ///< Theorem 2 (overhead-free CSA)
  kExistingCsa,  ///< periodic resource model [13]
};

struct VmAllocConfig {
  /// Upper bound on VCPUs per VM; the heuristic uses m = min(#tasks, this).
  unsigned max_vcpus_per_vm = 4;
  /// Number of slowdown classes for KMeans (clamped to min(m, #tasks)).
  std::size_t clusters = 4;
  VcpuAnalysis analysis = VcpuAnalysis::kRegulated;
  /// Intra-decision parallelism for paths that build their own context
  /// (admission): stripes for the min-budget surface batches (1 = serial,
  /// 0 = hardware) over `inner_pool` (borrowed; results are bit-identical
  /// at any setting, see docs/performance.md). Ignored when the caller
  /// supplies an AnalysisContext — configure that context instead.
  int inner_jobs = 1;
  util::ThreadPool* inner_pool = nullptr;
  /// Telemetry correlation id for the request that triggered this decision
  /// (the serve trace seq). Echoed into AdmitResult and stamped on the
  /// decision's AnalysisContext; -1 = not request-scoped. Never affects
  /// the allocation.
  std::int64_t request_id = -1;
};

/// Compute the existing-CSA (PRM) VCPU for the tasks at `idx`: Π = the
/// minimum task period, Θ(c,b) = the minimum PRM budget for the tasks'
/// WCETs at (c,b). Grid points where no feasible budget exists get Θ = 2Π,
/// which any core-schedulability test rejects.
model::Vcpu vcpu_existing_csa(const model::Taskset& tasks,
                              std::span<const std::size_t> idx,
                              analysis::AnalysisContext& ctx);
model::Vcpu vcpu_existing_csa(const model::Taskset& tasks,
                              std::span<const std::size_t> idx);

/// Existing-CSA VCPU computed at a single fixed WCET per task (used by the
/// Baseline, which assumes worst-case bandwidth and no cache): the budget
/// surface is constant.
model::Vcpu vcpu_existing_csa_max_wcet(const model::Taskset& tasks,
                                       std::span<const std::size_t> idx,
                                       analysis::AnalysisContext& ctx);
model::Vcpu vcpu_existing_csa_max_wcet(const model::Taskset& tasks,
                                       std::span<const std::size_t> idx);

/// Heuristic tasks→VCPUs mapping for the tasks of one VM (given by indices
/// into `tasks`). Returns the VCPUs with parameters per `cfg.analysis`.
std::vector<model::Vcpu> allocate_vm_heuristic(
    const model::Taskset& tasks, std::span<const std::size_t> vm_task_idx,
    const VmAllocConfig& cfg, analysis::AnalysisContext& ctx, util::Rng& rng);
std::vector<model::Vcpu> allocate_vm_heuristic(
    const model::Taskset& tasks, std::span<const std::size_t> vm_task_idx,
    const VmAllocConfig& cfg, util::Rng& rng);

/// Run the heuristic per VM over a whole taskset (tasks carry VM ids).
std::vector<model::Vcpu> allocate_vms_heuristic(
    const model::Taskset& tasks, const VmAllocConfig& cfg,
    analysis::AnalysisContext& ctx, util::Rng& rng);
std::vector<model::Vcpu> allocate_vms_heuristic(const model::Taskset& tasks,
                                                const VmAllocConfig& cfg,
                                                util::Rng& rng);

/// Group task indices by VM id, ascending.
std::vector<std::vector<std::size_t>> tasks_by_vm(const model::Taskset& tasks);

}  // namespace vc2m::core
