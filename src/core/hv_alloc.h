// Hypervisor-level resource allocation (§4.3): VCPUs → cores plus per-core
// cache and bandwidth partition counts.
//
// The heuristic fixes a core count m (growing from 1 to M) and repeats three
// phases until the system is schedulable or the iteration budget runs out:
//   Phase 1 (packing): VCPUs are clustered by slowdown vector; following a
//     random permutation of the clusters, each cluster's VCPUs are packed
//     worst-fit in decreasing reference utilization so that all cores end up
//     with similar total reference utilization.
//   Phase 2 (resource allocation): every core starts at (C_min, B_min);
//     while some core is unschedulable (utilization > 1 under its current
//     partitions), the single remaining cache-or-BW partition that yields
//     the largest utilization reduction on an unschedulable core is granted.
//     Stops when schedulable, when the pools run dry, or when no grant has
//     any impact.
//   Phase 3 (load balancing): VCPUs migrate from unschedulable cores to the
//     schedulable core that remains least utilized after the move; then
//     Phase 2 re-runs. When balancing stops helping, a new Phase-1
//     permutation is drawn.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "model/platform.h"
#include "model/task.h"
#include "util/rng.h"

namespace vc2m::core {

struct HvAllocResult {
  bool schedulable = false;
  unsigned cores_used = 0;
  /// Per used core: indices into the input VCPU vector.
  std::vector<std::vector<std::size_t>> vcpus_on_core;
  /// Per used core: allocated cache and bandwidth partition counts.
  std::vector<unsigned> cache;
  std::vector<unsigned> bw;

  /// Σ over used cores (for reporting / CAT programming).
  unsigned total_cache() const;
  unsigned total_bw() const;
};

struct HvAllocConfig {
  /// Number of slowdown classes for VCPU clustering.
  std::size_t clusters = 4;
  /// Phase-1 restarts (random cluster permutations) per core count.
  unsigned max_permutations = 8;
  /// Phase 3 ↔ Phase 2 alternations per permutation.
  unsigned max_balance_rounds = 8;

  // ---- ablation switches (DESIGN.md §4; bench_ablation_allocator) ----
  /// false: skip slowdown-vector clustering (every VCPU in one cluster).
  bool cluster_vcpus = true;
  /// Phase-2 partition granting policy.
  enum class Phase2Policy {
    kMaxGain,    ///< the paper: grant where utilization drops the most
    kRoundRobin  ///< ablation: cycle cache/BW grants over unschedulable cores
  };
  Phase2Policy phase2 = Phase2Policy::kMaxGain;
  /// false: skip Phase-3 load balancing entirely.
  bool load_balance = true;
};

/// The paper's heuristic. Returns schedulable == false when no core count
/// m ≤ platform.cores admits a feasible mapping within the search budget.
HvAllocResult allocate_heuristic(std::span<const model::Vcpu> vcpus,
                                 const model::PlatformSpec& platform,
                                 const HvAllocConfig& cfg, util::Rng& rng);

/// The Evenly-partition comparison solution: cache and BW split evenly over
/// all M cores, VCPUs packed best-fit decreasing by their utilization under
/// the even allocation.
HvAllocResult allocate_even_partition(std::span<const model::Vcpu> vcpus,
                                      const model::PlatformSpec& platform);

}  // namespace vc2m::core
