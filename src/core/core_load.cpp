#include "core/core_load.h"

#include <algorithm>
#include <numeric>

#include "analysis/schedulability.h"
#include "util/error.h"
#include "util/instrument.h"

namespace vc2m::core {

CoreLoad::CoreLoad(std::span<const model::Vcpu> vcpus,
                   const model::ResourceGrid& grid)
    : vcpus_(vcpus),
      grid_(grid),
      demand_(grid.size(), 0),
      demand_valid_(grid.size(), 0),
      sched_(grid.size(), 0),
      sched_valid_(grid.size(), 0),
      util_(grid.size(), 0),
      util_valid_(grid.size(), 0) {}

CoreLoad::CoreLoad(std::span<const model::Vcpu> vcpus,
                   const model::ResourceGrid& grid,
                   std::span<const std::size_t> members)
    : CoreLoad(vcpus, grid) {
  for (const std::size_t v : members) add(v);
}

void CoreLoad::add(std::size_t vcpu_index) {
  VC2M_CHECK(vcpu_index < vcpus_.size());
  on_core_.push_back(vcpu_index);
  std::fill(util_valid_.begin(), util_valid_.end(), 0);
  if (!exact_) {
    std::fill(sched_valid_.begin(), sched_valid_.end(), 0);
    return;
  }

  const std::int64_t p = vcpus_[vcpu_index].period.raw_ns();
  VC2M_CHECK(p > 0);
  const std::int64_t g = std::gcd(common_multiple_, p);
  if (common_multiple_ / g > analysis::kPeriodLcmCap / p) {
    // L would overflow the exact-comparison cap: defer to the fallback
    // test from here on (same verdicts, no incremental accounting).
    exact_ = false;
    std::fill(sched_valid_.begin(), sched_valid_.end(), 0);
    return;
  }
  const std::int64_t next = common_multiple_ / g * p;
  const std::int64_t scale = next / common_multiple_;
  if (scale > 1) {
    for (auto& w : weight_) w *= scale;
    for (std::size_t i = 0; i < demand_.size(); ++i)
      if (demand_valid_[i]) demand_[i] *= scale;
  }
  common_multiple_ = next;
  const std::int64_t w = common_multiple_ / p;
  weight_.push_back(w);

  const auto& budget = vcpus_[vcpu_index].budget;
  for (unsigned c = grid_.c_min; c <= grid_.c_max; ++c)
    for (unsigned b = grid_.b_min; b <= grid_.b_max; ++b) {
      const std::size_t i = grid_.index(c, b);
      if (demand_valid_[i])
        demand_[i] += static_cast<__int128>(budget.at(c, b).raw_ns()) * w;
    }
}

std::size_t CoreLoad::remove_at(std::size_t pos) {
  VC2M_CHECK(pos < on_core_.size());
  const std::size_t v = on_core_[pos];
  std::fill(util_valid_.begin(), util_valid_.end(), 0);
  if (exact_) {
    const std::int64_t w = weight_[pos];
    const auto& budget = vcpus_[v].budget;
    for (unsigned c = grid_.c_min; c <= grid_.c_max; ++c)
      for (unsigned b = grid_.b_min; b <= grid_.b_max; ++b) {
        const std::size_t i = grid_.index(c, b);
        if (demand_valid_[i])
          demand_[i] -= static_cast<__int128>(budget.at(c, b).raw_ns()) * w;
      }
    weight_.erase(weight_.begin() + static_cast<std::ptrdiff_t>(pos));
    // common_multiple_ stays: it remains a common multiple of the
    // remaining periods, which is all the exact comparison needs.
  } else {
    std::fill(sched_valid_.begin(), sched_valid_.end(), 0);
  }
  on_core_.erase(on_core_.begin() + static_cast<std::ptrdiff_t>(pos));
  return v;
}

double CoreLoad::utilization(unsigned c, unsigned b) {
  const std::size_t i = grid_.index(c, b);
  if (util_valid_[i]) {
    if (auto* ctr = util::alloc_counters()) ++ctr->load_cache_hits;
    return util_[i];
  }
  const double u = analysis::core_utilization(vcpus_, on_core_, c, b);
  util_[i] = u;
  util_valid_[i] = 1;
  return u;
}

bool CoreLoad::schedulable(unsigned c, unsigned b) {
  const std::size_t i = grid_.index(c, b);
  if (!exact_) {
    if (sched_valid_[i]) {
      const bool ok = sched_[i] != 0;
      if (auto* ctr = util::alloc_counters()) {
        ++ctr->load_cache_hits;
        ++ctr->admission_tests;
        ctr->admission_passed += ok ? 1 : 0;
      }
      return ok;
    }
    const bool ok = analysis::core_schedulable(vcpus_, on_core_, c, b);
    sched_[i] = ok ? 1 : 0;
    sched_valid_[i] = 1;
    return ok;
  }

  if (demand_valid_[i]) {
    if (auto* ctr = util::alloc_counters()) ++ctr->load_cache_hits;
  } else {
    __int128 d = 0;
    for (std::size_t k = 0; k < on_core_.size(); ++k)
      d += static_cast<__int128>(
               vcpus_[on_core_[k]].budget.at(c, b).raw_ns()) *
           weight_[k];
    demand_[i] = d;
    demand_valid_[i] = 1;
  }
  const bool ok = demand_[i] <= static_cast<__int128>(common_multiple_);
  if (auto* ctr = util::alloc_counters()) {
    ++ctr->admission_tests;
    ctr->admission_passed += ok ? 1 : 0;
  }
  return ok;
}

}  // namespace vc2m::core
