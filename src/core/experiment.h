// The §5 schedulability experiment runner shared by the Fig. 2/3/4 benches
// and the examples: sweep taskset reference utilization, generate workloads
// per §5.1, run each solution on identical tasksets, and record schedulable
// fractions and analysis running times.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/solutions.h"
#include "model/platform.h"
#include "util/table.h"
#include "workload/generator.h"

namespace vc2m::core {

struct ExperimentConfig {
  model::PlatformSpec platform = model::PlatformSpec::A();
  workload::UtilDist dist = workload::UtilDist::kUniform;
  double util_lo = 0.1;
  double util_hi = 2.0;
  double util_step = 0.05;
  int tasksets_per_point = 50;
  int num_vms = 1;
  std::uint64_t seed = 42;
  std::vector<Solution> solutions = all_solutions();
  SolveConfig solve;
};

struct SolutionPoint {
  int schedulable = 0;       ///< tasksets deemed schedulable
  int total = 0;             ///< tasksets analyzed
  double total_seconds = 0;  ///< summed analysis time

  double fraction() const {
    return total > 0 ? static_cast<double>(schedulable) / total : 0;
  }
  double avg_seconds() const {
    return total > 0 ? total_seconds / total : 0;
  }
};

struct UtilizationPoint {
  double target_util = 0;
  std::vector<SolutionPoint> per_solution;  ///< parallel to cfg.solutions
};

struct ExperimentResult {
  ExperimentConfig cfg;
  std::vector<UtilizationPoint> points;

  /// Largest utilization u such that every point ≤ u has schedulable
  /// fraction ≥ `threshold` for the given solution — the paper's
  /// "utilization after which tasksets start to become unschedulable".
  double breakdown_utilization(std::size_t solution_index,
                               double threshold = 0.999) const;

  /// Render as a table: one row per utilization, one fraction column per
  /// solution (plus optional average-seconds columns for Fig. 4).
  util::Table to_table(bool runtimes = false) const;
};

/// Run the sweep. `progress`, when set, is invoked after every utilization
/// point with (point_index, total_points).
ExperimentResult run_schedulability_experiment(
    const ExperimentConfig& cfg,
    const std::function<void(int, int)>& progress = {});

}  // namespace vc2m::core
