// The §5 schedulability experiment runner shared by the Fig. 2/3/4 benches
// and the examples: sweep taskset reference utilization, generate workloads
// per §5.1, run each solution on identical tasksets, and record schedulable
// fractions and analysis running times.
//
// The sweep is embarrassingly parallel: every RNG stream is pre-forked
// serially from the master seed, then the (point, taskset, solution) work
// items are dispatched over a work-stealing thread pool. Results are a pure
// function of the pre-forked streams, so they are bit-identical for any
// `jobs` count and any completion order (docs/parallelism.md spells out the
// contract; tests/test_parallel.cpp enforces it).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/solutions.h"
#include "model/platform.h"
#include "util/log_histogram.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/time.h"
#include "workload/generator.h"

namespace vc2m::core {

struct ExperimentConfig {
  model::PlatformSpec platform = model::PlatformSpec::A();
  workload::UtilDist dist = workload::UtilDist::kUniform;
  double util_lo = 0.1;
  double util_hi = 2.0;
  double util_step = 0.05;
  int tasksets_per_point = 50;
  int num_vms = 1;
  std::uint64_t seed = 42;
  /// Worker threads for the sweep; 0 means hardware concurrency. The
  /// result is bit-identical regardless of the value.
  int jobs = 0;
  /// StrategyRegistry keys to sweep, in column order; defaults to the five
  /// paper solutions. Any registered strategy — including ones registered
  /// by downstream code — can be named here. Resolved (and validated)
  /// once, before the sweep starts.
  std::vector<std::string> solutions = default_solution_keys();
  SolveConfig solve;

  /// Optional runtime validation of each *schedulable* allocation — e.g.
  /// sim::make_fault_validator, which replays the allocation in the
  /// simulator under a fault plan ("fraction schedulable under X% WCET
  /// overrun"). Called from worker threads (must be thread-safe) with the
  /// taskset, the solve result, and a per-item seed derived arithmetically
  /// from `seed` — so validation results are bit-identical for any `jobs`
  /// count. Unschedulable allocations are never validated.
  using ValidateFn = std::function<bool(
      const model::Taskset&, const SolveResult&, std::uint64_t)>;
  ValidateFn validate;
};

struct SolutionPoint {
  int schedulable = 0;       ///< tasksets deemed schedulable
  int total = 0;             ///< tasksets analyzed
  double total_seconds = 0;  ///< summed analysis time
  /// Tasksets that were schedulable AND passed ExperimentConfig::validate
  /// (0 when no validator is configured).
  int validated = 0;

  double fraction() const {
    return total > 0 ? static_cast<double>(schedulable) / total : 0;
  }
  double avg_seconds() const {
    return total > 0 ? total_seconds / total : 0;
  }
  /// Fraction of analyzed tasksets that survived runtime validation.
  double validated_fraction() const {
    return total > 0 ? static_cast<double>(validated) / total : 0;
  }
};

struct UtilizationPoint {
  double target_util = 0;
  std::vector<SolutionPoint> per_solution;  ///< parallel to cfg.solutions
};

struct ExperimentResult {
  ExperimentConfig cfg;
  std::vector<UtilizationPoint> points;

  /// Distribution of per-solve analysis seconds over the whole sweep,
  /// accumulated in serial (point, taskset, solution) order. The *set* of
  /// samples is jobs-independent; individual wall times are not.
  util::LogHistogram solve_seconds;

  /// Pool counters at the end of the sweep (executed/steals/idle per
  /// worker). Executed totals are deterministic; steal/idle split depends
  /// on OS scheduling — report, never gate.
  util::PoolTelemetry pool;

  /// Pool counter time series, sampled by the collector each time a
  /// utilization point completes (`at` is the wall offset from sweep
  /// start). Rendered as Perfetto counter tracks by the CLI.
  struct PoolSample {
    util::Time at;
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
    std::size_t pending = 0;
  };
  std::vector<PoolSample> pool_samples;

  /// Largest utilization u such that every point ≤ u has schedulable
  /// fraction ≥ `threshold` for the given solution — the paper's
  /// "utilization after which tasksets start to become unschedulable".
  /// Requires a non-empty sweep and a solution index every point covers.
  double breakdown_utilization(std::size_t solution_index,
                               double threshold = 0.999) const;

  /// Render as a table: one row per utilization, one fraction column per
  /// solution, one validated-fraction ("+f") column per solution when a
  /// validator was configured, plus optional average-seconds columns for
  /// Fig. 4. Requires a non-empty sweep whose points all match
  /// cfg.solutions.
  util::Table to_table(bool runtimes = false) const;
};

/// Run the sweep over cfg.jobs worker threads (0 = hardware concurrency).
/// `progress`, when set, is invoked from a single mutex-serialized collector
/// each time a utilization point completes, with a monotonically increasing
/// (points_completed, total_points) — note it may run on a worker thread.
/// The caller's util::AllocCounterScope, if any, receives every solve's
/// counters merged in serial (point, taskset, solution) order, so aggregate
/// effort totals are also independent of the jobs count.
ExperimentResult run_schedulability_experiment(
    const ExperimentConfig& cfg,
    const std::function<void(int, int)>& progress = {});

}  // namespace vc2m::core
