// The pluggable allocation engine: a solution is a named composition of a
// VM-level policy (tasks → VCPUs) and a hypervisor-level policy (VCPUs →
// cores + partitions), looked up in a string-keyed registry.
//
// The five §5 solutions are pre-registered compositions of three VM-level
// policies (Theorem-1 flattening, Theorem-2 regulated, existing-CSA — plus
// the two comparison packers) and two HV-level policies (three-phase
// heuristic, even-partition), with the exact search available as a third
// HV policy for yardstick runs. New strategies — e.g. multi-objective
// partitioning or bandwidth-reservation variants — register a Strategy at
// startup and immediately work everywhere a name is accepted: solve(),
// experiment sweeps, and the CLI (`vc2m solutions`, `--solutions`).
// docs/architecture.md has the full recipe.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/context.h"
#include "core/hv_alloc.h"
#include "model/platform.h"
#include "model/task.h"
#include "util/instrument.h"
#include "util/rng.h"
#include "util/time.h"

namespace vc2m::util {
class ThreadPool;
}

namespace vc2m::core {

struct SolveConfig {
  /// Slowdown classes for both clustering stages.
  std::size_t clusters = 4;
  HvAllocConfig hv;
  /// Intra-core overhead inflation (§4.1 Remarks); zero by default, as the
  /// paper's schedulability study abstracts measured overheads away.
  util::Time task_inflation = util::Time::zero();
  util::Time vcpu_inflation = util::Time::zero();
  /// Intra-solve parallelism for the min-budget surface batches: stripe
  /// count for AnalysisContext::min_budget_batch (1 = serial, 0 = hardware
  /// concurrency). Allocations AND effort counters are bit-identical at any
  /// value (docs/performance.md).
  int inner_jobs = 1;
  /// Pool the batches stripe over; borrowed, not owned. Must not be the
  /// pool whose worker invokes solve() (the batch blocks on its stripes).
  /// When null and inner_jobs != 1, solve() spins up a transient pool.
  util::ThreadPool* inner_pool = nullptr;
};

struct SolveResult {
  bool schedulable = false;
  std::vector<model::Vcpu> vcpus;
  HvAllocResult mapping;
  double seconds = 0;  ///< wall-clock analysis + allocation time
  /// What the allocator did: clustering effort, admission tests, dbf and
  /// budget evaluations, memoization hits, search coverage, per-phase wall
  /// time (src/obs reports these through the metrics registry).
  util::AllocCounters counters;
};

/// VM-level policy: turn one taskset into parameterized VCPUs. Policies are
/// stateless and shared between strategies; per-run state (memoized budget
/// surfaces, counters) lives in the AnalysisContext threaded through.
class VmPolicy {
 public:
  virtual ~VmPolicy() = default;
  virtual std::string_view name() const = 0;
  virtual std::vector<model::Vcpu> allocate(const model::Taskset& tasks,
                                            const model::PlatformSpec& platform,
                                            const SolveConfig& cfg,
                                            analysis::AnalysisContext& ctx,
                                            util::Rng& rng) const = 0;
  /// True when this policy's VCPUs release in lockstep with their task
  /// (Theorem-1 flattening): deployment then synchronizes VCPU release
  /// offsets with task releases (`vc2m simulate` sets release_sync).
  virtual bool release_sync() const { return false; }
};

/// Hypervisor-level policy: map VCPUs onto cores and pick per-core cache/BW
/// partition counts. Same sharing rules as VmPolicy; the incremental
/// per-core accounting both built-in policies use lives in core::CoreLoad.
class HvPolicy {
 public:
  virtual ~HvPolicy() = default;
  virtual std::string_view name() const = 0;
  virtual HvAllocResult allocate(std::span<const model::Vcpu> vcpus,
                                 const model::PlatformSpec& platform,
                                 const SolveConfig& cfg,
                                 analysis::AnalysisContext& ctx,
                                 util::Rng& rng) const = 0;
};

/// One registered solution: a named composition of the two levels.
struct Strategy {
  std::string key;      ///< registry key, e.g. "ovf"
  std::string display;  ///< paper name, e.g. "Heuristic (overhead-free CSA)"
  /// One-line summary shown by `vc2m solutions` — what the composition does,
  /// not how it is keyed.
  std::string description;
  std::shared_ptr<const VmPolicy> vm;
  std::shared_ptr<const HvPolicy> hv;
};

/// Process-wide strategy registry, pre-populated with the five §5 solutions
/// under their CLI names (flat, ovf, existing, even, baseline) plus the
/// exact-search yardstick (exact-ovf). Register additional strategies at
/// startup, before experiment worker threads start reading.
class StrategyRegistry {
 public:
  static StrategyRegistry& instance();

  /// Register a strategy (key must be unique and non-empty; both policies
  /// must be set). Returns the stored entry, whose address stays stable.
  const Strategy& add(Strategy s);

  const Strategy* find(std::string_view key) const;

  /// find() or die with the list of known keys.
  const Strategy& require(std::string_view key) const;

  /// All strategies in registration order (built-ins first).
  std::vector<const Strategy*> all() const;

 private:
  StrategyRegistry();
  std::vector<std::unique_ptr<Strategy>> entries_;
};

/// Run one strategy on one taskset — the engine entry point; the
/// Solution-enum and registry-key overloads are thin wrappers over this.
/// Tasks must share the platform's resource grid; Theorem-2-based
/// strategies additionally require harmonic periods (guaranteed by the
/// §5.1 generator).
SolveResult solve(const Strategy& strategy, const model::Taskset& tasks,
                  const model::PlatformSpec& platform, const SolveConfig& cfg,
                  util::Rng& rng);

/// Registry lookup by key, then solve. Dies on an unknown key.
SolveResult solve(std::string_view strategy_key, const model::Taskset& tasks,
                  const model::PlatformSpec& platform, const SolveConfig& cfg,
                  util::Rng& rng);

/// The five paper solutions' registry keys, in the paper's legend order
/// (strongest first) — the default experiment sweep.
const std::vector<std::string>& default_solution_keys();

}  // namespace vc2m::core
