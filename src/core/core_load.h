// Incremental per-core schedulability accounting.
//
// hv_alloc Phases 2–3, admission control, and the exact search all probe
// one core's VCPU set over and over: what is Σ_j Θ_j(c,b)/Π_j here, and
// does it stay ≤ 1? Re-deriving both from the VCPU list on every probe made
// each partition grant and migration O(members × probes). A CoreLoad owns
// one core's membership and keeps running accounts instead:
//
//  - utilization(c, b) — the double sum — is computed at most once per grid
//    point per membership epoch, by the same in-order summation
//    analysis::core_utilization performs (so cached and fresh values are
//    bit-identical; a running double sum updated incrementally would drift
//    and flip tie-sensitive allocator decisions). Membership edits drop the
//    cache; partition grants only move the queried (c, b) and invalidate
//    nothing.
//
//  - schedulable(c, b) — the exact integer test — is maintained
//    incrementally: the core tracks a common multiple L of its members'
//    periods with per-member weights w_j = L/Π_j, and materialized
//    per-point demands D(c,b) = Σ_j Θ_j(c,b)·w_j. add/remove adjust D by
//    the one member's contribution instead of re-summing. D ≤ L is the
//    same exact comparison analysis::core_schedulable makes (L is a
//    multiple of the minimal period LCM, so both sides scale by the same
//    integer). If L would exceed analysis::kPeriodLcmCap the core defers
//    to analysis::core_schedulable permanently — verdicts stay identical
//    in every case, only the evaluation count changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "model/resource_grid.h"
#include "model/task.h"

namespace vc2m::core {

class CoreLoad {
 public:
  /// An empty core over `vcpus` (indices passed to add() refer into it).
  /// The span must outlive the CoreLoad and must not be reallocated.
  CoreLoad(std::span<const model::Vcpu> vcpus,
           const model::ResourceGrid& grid);

  /// Convenience: an initial membership, added in order.
  CoreLoad(std::span<const model::Vcpu> vcpus, const model::ResourceGrid& grid,
           std::span<const std::size_t> members);

  /// Membership, in insertion order (the order every cached sum uses).
  const std::vector<std::size_t>& members() const { return on_core_; }
  bool empty() const { return on_core_.empty(); }
  std::size_t size() const { return on_core_.size(); }

  /// Add the VCPU at `vcpu_index` to this core.
  void add(std::size_t vcpu_index);

  /// Remove the member at position `pos` (not VCPU index); returns the
  /// removed VCPU index. Remaining membership order is preserved.
  std::size_t remove_at(std::size_t pos);

  /// Σ_j Θ_j(c,b)/Π_j over the members — bit-identical to
  /// analysis::core_utilization over members() at (c, b).
  double utilization(unsigned c, unsigned b);

  /// Exact Σ_j Θ_j(c,b)/Π_j ≤ 1 — same verdict as
  /// analysis::core_schedulable over members() at (c, b). Counts an
  /// admission test per query like the non-incremental path.
  bool schedulable(unsigned c, unsigned b);

 private:
  std::span<const model::Vcpu> vcpus_;
  model::ResourceGrid grid_;
  std::vector<std::size_t> on_core_;

  // Exact-mode state: L (common multiple of member periods), per-member
  // weights L/Π_j parallel to on_core_, and lazily materialized demands.
  bool exact_ = true;
  std::int64_t common_multiple_ = 1;
  std::vector<std::int64_t> weight_;
  std::vector<__int128> demand_;           // per grid point, row-major
  std::vector<std::uint8_t> demand_valid_;

  // Cached verdicts for the fallback (non-exact) mode only.
  std::vector<std::uint8_t> sched_;
  std::vector<std::uint8_t> sched_valid_;

  // Cached utilization sums, dropped on membership edits.
  std::vector<double> util_;
  std::vector<std::uint8_t> util_valid_;
};

}  // namespace vc2m::core
