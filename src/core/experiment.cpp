#include "core/experiment.h"

#include <cmath>
#include <cstdio>

#include "util/error.h"

namespace vc2m::core {

double ExperimentResult::breakdown_utilization(std::size_t solution_index,
                                               double threshold) const {
  double breakdown = 0;
  for (const auto& pt : points) {
    VC2M_CHECK(solution_index < pt.per_solution.size());
    if (pt.per_solution[solution_index].fraction() < threshold) break;
    breakdown = pt.target_util;
  }
  return breakdown;
}

util::Table ExperimentResult::to_table(bool runtimes) const {
  std::vector<std::string> header{"util"};
  for (const auto s : cfg.solutions) header.push_back(to_string(s));
  if (runtimes)
    for (const auto s : cfg.solutions)
      header.push_back("sec " + to_string(s));
  util::Table table(std::move(header));
  for (const auto& pt : points) {
    std::vector<std::string> row;
    auto fmt = [](double v, int prec) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.*f", prec, v);
      return std::string(buf);
    };
    row.push_back(fmt(pt.target_util, 2));
    for (const auto& sp : pt.per_solution) row.push_back(fmt(sp.fraction(), 3));
    if (runtimes)
      for (const auto& sp : pt.per_solution)
        row.push_back(fmt(sp.avg_seconds(), 4));
    table.add_row_vec(std::move(row));
  }
  return table;
}

ExperimentResult run_schedulability_experiment(
    const ExperimentConfig& cfg,
    const std::function<void(int, int)>& progress) {
  VC2M_CHECK(cfg.util_lo > 0 && cfg.util_step > 0 &&
             cfg.util_lo <= cfg.util_hi);
  VC2M_CHECK(cfg.tasksets_per_point > 0);
  VC2M_CHECK(!cfg.solutions.empty());

  ExperimentResult result;
  result.cfg = cfg;

  const int n_points = static_cast<int>(
      std::floor((cfg.util_hi - cfg.util_lo) / cfg.util_step + 1e-9)) + 1;

  util::Rng master(cfg.seed);
  for (int pi = 0; pi < n_points; ++pi) {
    UtilizationPoint point;
    point.target_util = cfg.util_lo + cfg.util_step * pi;
    point.per_solution.assign(cfg.solutions.size(), {});

    workload::GeneratorConfig gen;
    gen.grid = cfg.platform.grid;
    gen.target_ref_utilization = point.target_util;
    gen.dist = cfg.dist;
    gen.num_vms = cfg.num_vms;

    for (int rep = 0; rep < cfg.tasksets_per_point; ++rep) {
      util::Rng gen_rng = master.fork();
      const auto taskset = workload::generate_taskset(gen, gen_rng);
      for (std::size_t si = 0; si < cfg.solutions.size(); ++si) {
        util::Rng solve_rng = master.fork();
        const auto res = solve(cfg.solutions[si], taskset, cfg.platform,
                               cfg.solve, solve_rng);
        auto& sp = point.per_solution[si];
        sp.total += 1;
        sp.schedulable += res.schedulable ? 1 : 0;
        sp.total_seconds += res.seconds;
      }
    }
    result.points.push_back(std::move(point));
    if (progress) progress(pi + 1, n_points);
  }
  return result;
}

}  // namespace vc2m::core
