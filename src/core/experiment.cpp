#include "core/experiment.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>

#include "obs/decision_log.h"
#include "util/error.h"
#include "util/instrument.h"
#include "util/phase_profiler.h"
#include "util/thread_pool.h"

namespace vc2m::core {

namespace {

/// Per-work-item validation seed: a SplitMix64 mix of the master seed and
/// the item's serial index. Derived arithmetically (not by forking the
/// master Rng) so the pre-forked gen/solve stream sequence — which
/// tests/test_parallel.cpp pins against a hand-rolled serial reference —
/// is untouched.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t item) {
  std::uint64_t x = seed + 0x9E3779B97F4A7C15ull * (item + 1);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

double ExperimentResult::breakdown_utilization(std::size_t solution_index,
                                               double threshold) const {
  VC2M_CHECK_MSG(!points.empty(),
                 "breakdown_utilization on an empty experiment (no "
                 "utilization points — was the sweep run?)");
  double breakdown = 0;
  for (const auto& pt : points) {
    VC2M_CHECK_MSG(solution_index < pt.per_solution.size(),
                   "solution index " << solution_index
                                     << " out of range — point at util "
                                     << pt.target_util << " has only "
                                     << pt.per_solution.size()
                                     << " solution columns");
    if (pt.per_solution[solution_index].fraction() < threshold) break;
    breakdown = pt.target_util;
  }
  return breakdown;
}

util::Table ExperimentResult::to_table(bool runtimes) const {
  VC2M_CHECK_MSG(!points.empty(),
                 "to_table on an empty experiment (no utilization points — "
                 "was the sweep run?)");
  const auto& registry = StrategyRegistry::instance();
  std::vector<std::string> header{"util"};
  for (const auto& s : cfg.solutions)
    header.push_back(registry.require(s).display);
  if (cfg.validate)
    for (const auto& s : cfg.solutions)
      header.push_back(registry.require(s).display + " +f");
  if (runtimes)
    for (const auto& s : cfg.solutions)
      header.push_back("sec " + registry.require(s).display);
  util::Table table(std::move(header));
  for (const auto& pt : points) {
    VC2M_CHECK_MSG(pt.per_solution.size() == cfg.solutions.size(),
                   "point at util " << pt.target_util << " has "
                                    << pt.per_solution.size()
                                    << " solution columns but the config "
                                       "names "
                                    << cfg.solutions.size() << " solutions");
    std::vector<std::string> row;
    auto fmt = [](double v, int prec) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.*f", prec, v);
      return std::string(buf);
    };
    row.push_back(fmt(pt.target_util, 2));
    for (const auto& sp : pt.per_solution) row.push_back(fmt(sp.fraction(), 3));
    if (cfg.validate)
      for (const auto& sp : pt.per_solution)
        row.push_back(fmt(sp.validated_fraction(), 3));
    if (runtimes)
      for (const auto& sp : pt.per_solution)
        row.push_back(fmt(sp.avg_seconds(), 4));
    table.add_row_vec(std::move(row));
  }
  return table;
}

ExperimentResult run_schedulability_experiment(
    const ExperimentConfig& cfg,
    const std::function<void(int, int)>& progress) {
  VC2M_CHECK(cfg.util_lo > 0 && cfg.util_step > 0 &&
             cfg.util_lo <= cfg.util_hi);
  VC2M_CHECK(cfg.tasksets_per_point > 0);
  VC2M_CHECK(!cfg.solutions.empty());
  VC2M_CHECK_MSG(cfg.jobs >= 0, "jobs must be >= 0 (0 = hardware)");

  VC2M_PROFILE_PHASE("experiment");

  ExperimentResult result;
  result.cfg = cfg;

  // Resolve every named strategy up front: an unknown key dies here with
  // the known-key list instead of mid-sweep on a worker thread. Registry
  // entries have stable addresses, so the pointers stay valid for the run.
  std::vector<const Strategy*> strategies;
  strategies.reserve(cfg.solutions.size());
  for (const auto& key : cfg.solutions)
    strategies.push_back(&StrategyRegistry::instance().require(key));

  const int n_points = static_cast<int>(
      std::floor((cfg.util_hi - cfg.util_lo) / cfg.util_step + 1e-9)) + 1;
  const int reps = cfg.tasksets_per_point;
  const std::size_t n_sol = cfg.solutions.size();
  const std::size_t n_reps_total =
      static_cast<std::size_t>(n_points) * static_cast<std::size_t>(reps);

  // Pre-fork every RNG stream serially from the master seed, in exactly the
  // order a serial sweep consumes them (per point, per taskset: one
  // generator stream, then one solver stream per solution). Each work item
  // below is a pure function of its streams writing to its own slot, so
  // the sweep's output does not depend on worker count or completion order.
  struct RepStreams {
    util::Rng gen;
    std::vector<util::Rng> solve;
  };
  util::Rng master(cfg.seed);
  std::vector<RepStreams> streams(n_reps_total);
  {
    VC2M_PROFILE_PHASE("fork_streams");
    for (std::size_t ti = 0; ti < n_reps_total; ++ti) {
      streams[ti].gen = master.fork();
      streams[ti].solve.reserve(n_sol);
      for (std::size_t si = 0; si < n_sol; ++si)
        streams[ti].solve.push_back(master.fork());
    }
  }

  // One shared intra-solve pool for the whole sweep (when inner parallelism
  // is requested without a caller-supplied pool): solve() would otherwise
  // spin up and tear down a transient pool per work item. Outer workers
  // block on their batch's latch while the inner pool's threads run the
  // stripes, so the two pools must be distinct — and are.
  SolveConfig solve_cfg = cfg.solve;
  std::unique_ptr<util::ThreadPool> shared_inner;
  if (solve_cfg.inner_jobs != 1 && solve_cfg.inner_pool == nullptr) {
    const unsigned inner_workers =
        solve_cfg.inner_jobs == 0
            ? util::ThreadPool::hardware_workers()
            : static_cast<unsigned>(solve_cfg.inner_jobs);
    if (inner_workers > 1) {
      shared_inner = std::make_unique<util::ThreadPool>(inner_workers);
      solve_cfg.inner_pool = shared_inner.get();
    }
  }

  // Per-solution span labels, precomputed so worker threads never build
  // strings on the hot path.
  std::vector<std::string> span_names;
  span_names.reserve(n_sol);
  for (const auto& key : cfg.solutions) span_names.push_back("solve/" + key);

  // One output slot per (point, taskset, solution); tasksets are generated
  // once per (point, taskset) under a once_flag and shared by that
  // taskset's solution items, then freed when its last solve finishes.
  struct Cell {
    bool schedulable = false;
    bool validated = false;
    double seconds = 0;
    util::AllocCounters counters;
    obs::DecisionLog log;  ///< per-item decision capture (recording runs only)
  };
  // Decision recording state is thread-local, so worker threads see none of
  // the caller's scope. If the caller is recording, each work item records
  // into its own cell; the captures are appended to the caller's log in
  // serial (point, taskset, solution) order after the sweep — the same
  // jobs-independence contract the counters follow.
  const bool record_decisions = obs::decision_log() != nullptr;
  std::vector<Cell> cells(n_reps_total * n_sol);
  std::vector<model::Taskset> tasksets(n_reps_total);
  std::unique_ptr<std::once_flag[]> taskset_once(
      new std::once_flag[n_reps_total]);

  // Single collector: keeps the progress callback monotone no matter which
  // worker finishes which point, and reclaims taskset memory early.
  std::mutex collector_mu;
  std::vector<int> rep_items_left(n_reps_total, static_cast<int>(n_sol));
  std::vector<int> point_items_left(
      n_points, reps * static_cast<int>(n_sol));
  int points_done = 0;

  util::ThreadPool pool(static_cast<unsigned>(cfg.jobs));
  const auto sweep_start = std::chrono::steady_clock::now();
  {
    VC2M_PROFILE_PHASE("sweep");
    for (int pi = 0; pi < n_points; ++pi) {
      for (int rep = 0; rep < reps; ++rep) {
        const std::size_t ti = static_cast<std::size_t>(pi) * reps +
                               static_cast<std::size_t>(rep);
        for (std::size_t si = 0; si < n_sol; ++si) {
          pool.submit([&, pi, ti, si] {
            std::call_once(taskset_once[ti], [&] {
              VC2M_PROFILE_PHASE("generate");
              workload::GeneratorConfig gen;
              gen.grid = cfg.platform.grid;
              gen.target_ref_utilization = cfg.util_lo + cfg.util_step * pi;
              gen.dist = cfg.dist;
              gen.num_vms = cfg.num_vms;
              util::Rng gen_rng = streams[ti].gen;
              tasksets[ti] = workload::generate_taskset(gen, gen_rng);
            });
            util::Rng solve_rng = streams[ti].solve[si];
            Cell& cell = cells[ti * n_sol + si];
            {
              VC2M_PROFILE_PHASE(span_names[si]);
              std::optional<obs::DecisionLogScope> rec;
              if (record_decisions) rec.emplace(cell.log);
              const auto res = solve(*strategies[si], tasksets[ti],
                                     cfg.platform, solve_cfg, solve_rng);
              cell.schedulable = res.schedulable;
              cell.seconds = res.seconds;
              cell.counters = res.counters;
              // Validate before the collector lock: the taskset may be
              // freed the moment this item is accounted as the rep's last.
              if (cfg.validate && res.schedulable)
                cell.validated =
                    cfg.validate(tasksets[ti], res,
                                 mix_seed(cfg.seed, ti * n_sol + si));
            }

            std::lock_guard<std::mutex> lk(collector_mu);
            if (--rep_items_left[ti] == 0) tasksets[ti] = model::Taskset{};
            if (--point_items_left[pi] == 0) {
              ++points_done;
              const auto t = pool.telemetry();
              result.pool_samples.push_back(
                  {util::Time::ns(
                       std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - sweep_start)
                           .count()),
                   t.total_executed(), t.total_steals(), pool.pending()});
              if (progress) progress(points_done, n_points);
            }
          });
        }
      }
    }
    pool.wait();
  }
  result.pool = pool.telemetry();

  // Deterministic assembly in serial (point, taskset, solution) order.
  VC2M_PROFILE_PHASE("assemble");
  result.points.reserve(static_cast<std::size_t>(n_points));
  for (int pi = 0; pi < n_points; ++pi) {
    UtilizationPoint point;
    point.target_util = cfg.util_lo + cfg.util_step * pi;
    point.per_solution.assign(n_sol, {});
    for (int rep = 0; rep < reps; ++rep) {
      const std::size_t ti =
          static_cast<std::size_t>(pi) * reps + static_cast<std::size_t>(rep);
      for (std::size_t si = 0; si < n_sol; ++si) {
        const Cell& cell = cells[ti * n_sol + si];
        auto& sp = point.per_solution[si];
        sp.total += 1;
        sp.schedulable += cell.schedulable ? 1 : 0;
        sp.validated += cell.validated ? 1 : 0;
        sp.total_seconds += cell.seconds;
        result.solve_seconds.add(cell.seconds);
      }
    }
    result.points.push_back(std::move(point));
  }

  // Solves ran on worker threads whose thread-local collector pointer is
  // null, so the caller's scope saw nothing live; merge the per-solve
  // counters into it here, in serial order, for jobs-independent totals.
  if (auto* outer = util::alloc_counters())
    for (const Cell& cell : cells) outer->merge(cell.counters);
  if (auto* outer = obs::decision_log())
    for (const Cell& cell : cells) outer->append(cell.log);
  return result;
}

}  // namespace vc2m::core
