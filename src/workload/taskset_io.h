// Taskset serialization: the CSV exchange format used by the vc2m CLI.
//
// One row per task: `vm,period_ms,ref_wcet_ms,benchmark`. The benchmark
// column names a PARSEC profile; on load, the task's WCET surface is
// reconstructed from the profile's slowdown vectors scaled to the given
// reference WCET, and its maximum WCET from the profile's s_max — i.e. the
// format stores the §5.1 generative parameters, not the dense surface.
#pragma once

#include <iosfwd>
#include <string>

#include "model/resource_grid.h"
#include "model/task.h"

namespace vc2m::workload {

/// Write `tasks` as CSV (with header). Tasks must carry PARSEC labels.
void write_taskset_csv(std::ostream& os, const model::Taskset& tasks);
void write_taskset_csv(const std::string& path, const model::Taskset& tasks);

/// Parse a CSV taskset; WCET surfaces are rebuilt over `grid`. Throws
/// util::Error on malformed rows, unknown benchmarks, or empty input — every
/// message carries `source` (the file name for the path overload) and the
/// 1-based line number. Numeric fields are parsed strictly: trailing
/// characters, NaN/inf, and negative ids are rejected, as are exact
/// duplicate task rows. Lines starting with '#' and the header are ignored.
model::Taskset read_taskset_csv(std::istream& is,
                                const model::ResourceGrid& grid,
                                const std::string& source = "<taskset csv>");
model::Taskset read_taskset_csv(const std::string& path,
                                const model::ResourceGrid& grid);

}  // namespace vc2m::workload
