#include "workload/generator.h"

#include <cmath>

#include "util/error.h"

namespace vc2m::workload {

std::string to_string(UtilDist d) {
  switch (d) {
    case UtilDist::kUniform: return "uniform";
    case UtilDist::kBimodalLight: return "bimodal-light";
    case UtilDist::kBimodalMedium: return "bimodal-medium";
    case UtilDist::kBimodalHeavy: return "bimodal-heavy";
  }
  return "?";
}

double draw_utilization(UtilDist dist, util::Rng& rng) {
  const auto light = [&] { return rng.uniform(0.1, 0.4); };
  const auto heavy = [&] { return rng.uniform(0.5, 0.9); };
  switch (dist) {
    case UtilDist::kUniform: return light();
    case UtilDist::kBimodalLight: return rng.bernoulli(8.0 / 9.0) ? light() : heavy();
    case UtilDist::kBimodalMedium: return rng.bernoulli(6.0 / 9.0) ? light() : heavy();
    case UtilDist::kBimodalHeavy: return rng.bernoulli(4.0 / 9.0) ? light() : heavy();
  }
  VC2M_CHECK_MSG(false, "unreachable utilization distribution");
  return 0;
}

std::vector<util::Time> harmonic_period_menu(const GeneratorConfig& cfg,
                                             util::Rng& rng) {
  VC2M_CHECK(cfg.harmonic_levels >= 1);
  VC2M_CHECK(cfg.period_lo < cfg.period_hi);
  const std::int64_t scale = std::int64_t{1} << (cfg.harmonic_levels - 1);
  // base · 2^(levels-1) must not exceed period_hi.
  const std::int64_t base_hi = cfg.period_hi.raw_ns() / scale;
  VC2M_CHECK_MSG(base_hi > cfg.period_lo.raw_ns(),
                 "period range too narrow for the harmonic menu");
  // Quantize the base to 1 ms so hyperperiods stay human-readable; the
  // harmonic structure is exact regardless.
  const std::int64_t ms = 1'000'000;
  const std::int64_t base_ms =
      rng.uniform_int(cfg.period_lo.raw_ns() / ms, base_hi / ms);
  std::vector<util::Time> menu;
  menu.reserve(cfg.harmonic_levels);
  for (unsigned k = 0; k < cfg.harmonic_levels; ++k)
    menu.push_back(util::Time::ns(base_ms * ms * (std::int64_t{1} << k)));
  return menu;
}

model::Taskset generate_taskset(const GeneratorConfig& cfg, util::Rng& rng) {
  cfg.grid.validate();
  VC2M_CHECK(cfg.target_ref_utilization > 0);
  VC2M_CHECK(cfg.num_vms >= 1);

  const auto& suite = parsec_suite();
  const auto menu = harmonic_period_menu(cfg, rng);

  // Pre-compute per-benchmark surfaces and max slowdowns for this grid.
  std::vector<model::Surface> surfaces;
  std::vector<double> s_max;
  surfaces.reserve(suite.size());
  for (const auto& p : suite) {
    surfaces.push_back(p.surface(cfg.grid));
    s_max.push_back(p.max_slowdown(cfg.grid));
  }

  model::Taskset ts;
  double total_ref = 0;
  while (total_ref < cfg.target_ref_utilization) {
    const std::size_t k = rng.index(suite.size());
    const double u_max = draw_utilization(cfg.dist, rng);
    const util::Time p = menu[rng.index(menu.size())];

    // e_i^max = u_i · p_i; e*_i = e_i^max / s_k^max (§5.1).
    double ref_util = u_max / s_max[k];
    double ref_wcet_ns = ref_util * static_cast<double>(p.raw_ns());

    // Scale the last task down so the taskset lands exactly on the target.
    const double remaining = cfg.target_ref_utilization - total_ref;
    if (ref_util > remaining) {
      ref_util = remaining;
      ref_wcet_ns = ref_util * static_cast<double>(p.raw_ns());
    }
    const auto ref_wcet = util::Time::ns(
        std::max<std::int64_t>(1, static_cast<std::int64_t>(ref_wcet_ns + 0.5)));

    model::Task task;
    task.period = p;
    task.wcet = model::WcetFn::from_slowdown(ref_wcet, surfaces[k]);
    task.max_wcet = util::Time::ns(static_cast<std::int64_t>(
        static_cast<double>(ref_wcet.raw_ns()) * s_max[k] + 0.5));
    task.vm = static_cast<int>(ts.size()) % cfg.num_vms;
    task.label = suite[k].name;
    ts.push_back(std::move(task));
    total_ref += ref_util;
  }
  return ts;
}

}  // namespace vc2m::workload
