// Synthetic PARSEC benchmark profiles.
//
// The paper profiles the PARSEC suite (simlarge inputs) on its prototype to
// obtain, per benchmark k, the slowdown vector s_k(c,b) for c = 2..20 and
// b = 1..20, the maximum WCET (worst-case bandwidth, cache disabled), and
// the maximum slowdown factor s_k^max. We have no CAT hardware, so we
// replace measurement with a physical latency model that preserves the
// properties the evaluation depends on:
//
//   T(c,b) = T_cpu + T_mem · miss(c) · stall(c,b)
//
// where miss(c) is a working-set miss curve (exponential knee, normalized to
// miss(C) = 1) and stall(c,b) = max(1, bw_demand(c)/b) models bandwidth
// throttling below the benchmark's saturation point. The surfaces are
// monotone non-increasing in c and b, equal 1 at the reference allocation
// (C, B), and differ in character per benchmark (compute-bound vs
// cache-sensitive vs streaming) — exactly the variation §3.3 reports.
#pragma once

#include <string>
#include <vector>

#include "model/resource_grid.h"
#include "model/surface.h"

namespace vc2m::workload {

/// The working-set miss curve shared by the profile library and the
/// simulator's execution model: exponential decay from `miss_amp` at c = 1
/// to exactly 1 at c = c_max.
double miss_curve(double c, double c_max, double miss_amp, double ws_decay);

struct ParsecProfile {
  std::string name;

  /// Fraction of the reference execution time spent waiting on memory.
  double mem_frac = 0.2;
  /// miss(1)/miss(C): how much worse the miss rate gets with one partition.
  double miss_amp = 2.0;
  /// Working-set decay constant of the miss curve (partitions).
  double ws_decay = 4.0;
  /// Bandwidth partitions needed at the reference miss rate to avoid stalls.
  double bw_sat = 4.0;
  /// Extra miss amplification when the cache is disabled entirely
  /// (the "maximum WCET" configuration lies outside the CAT grid).
  double nocache_amp = 1.3;
  /// Slowdown of the *compute* portion with the cache disabled: instruction
  /// fetches and hot-loop data that normally never leave L1/L2 go to DRAM,
  /// so even compute-bound code slows several-fold in the maximum-WCET
  /// configuration. Applies only to max_slowdown().
  double nocache_cpu_penalty = 3.5;

  /// Relative miss rate at c partitions (c may be below grid.c_min when
  /// modelling the cache-disabled point); miss_rel(grid.c_max) == 1.
  double miss_rel(double c, const model::ResourceGrid& grid) const;

  /// Slowdown s(c, b) relative to the reference allocation (C, B).
  double slowdown(double c, double b, const model::ResourceGrid& grid) const;

  /// The dense slowdown surface over the grid; s(C,B) == 1.
  model::Surface surface(const model::ResourceGrid& grid) const;

  /// s^max: slowdown with the cache disabled and worst-case bandwidth,
  /// i.e. the ratio of the maximum WCET to the reference WCET (§5.1).
  double max_slowdown(const model::ResourceGrid& grid) const;
};

/// The twelve-benchmark suite used by the evaluation. Stable order.
const std::vector<ParsecProfile>& parsec_suite();

/// Lookup by name; throws util::Error if unknown.
const ParsecProfile& find_profile(const std::string& name);

}  // namespace vc2m::workload
