// Strict CSV field parsing shared by the taskset / surface readers.
//
// Every helper rejects what std::sto* silently accepts: trailing garbage
// ("5x"), non-finite values ("nan", "inf"), and negative values wrapped
// into unsigned ("-1" → 4294967295). Every failure throws util::Error with
// the source name, 1-based line number, and offending line, so a user can
// fix a hand-edited file without bisecting it.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/error.h"

namespace vc2m::workload::detail {

/// Carries "where are we" through a CSV parse; fail() formats
/// `<source>:<line>: <what>: <line text>`.
struct ParseContext {
  std::string source;
  std::size_t lineno = 0;
  std::string line;

  [[noreturn]] void fail(const std::string& what) const {
    throw util::Error(source + ":" + std::to_string(lineno) + ": " + what +
                      ": '" + line + "'");
  }
};

/// Parse a finite double, consuming the whole field.
inline double parse_double(const ParseContext& ctx, const std::string& s,
                           const char* field) {
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    ctx.fail(std::string("non-numeric ") + field + " field '" + s + "'");
  }
  if (pos != s.size())
    ctx.fail(std::string("trailing characters in ") + field + " field '" +
             s + "'");
  if (!std::isfinite(v))
    ctx.fail(std::string("non-finite ") + field + " field '" + s + "'");
  return v;
}

/// Parse a signed integer, consuming the whole field.
inline std::int64_t parse_int(const ParseContext& ctx, const std::string& s,
                              const char* field) {
  std::size_t pos = 0;
  long long v = 0;
  try {
    v = std::stoll(s, &pos);
  } catch (const std::exception&) {
    ctx.fail(std::string("non-integer ") + field + " field '" + s + "'");
  }
  if (pos != s.size())
    ctx.fail(std::string("trailing characters in ") + field + " field '" +
             s + "'");
  return v;
}

/// Parse a non-negative integer; rejects the leading '-' that std::stoul
/// would wrap around.
inline std::uint64_t parse_unsigned(const ParseContext& ctx,
                                    const std::string& s,
                                    const char* field) {
  const std::int64_t v = parse_int(ctx, s, field);
  if (v < 0)
    ctx.fail(std::string("negative ") + field + " field '" + s + "'");
  return static_cast<std::uint64_t>(v);
}

}  // namespace vc2m::workload::detail
