// Measured WCET-surface exchange format.
//
// The intended production workflow mirrors §3.3/§5.1: profile each task on
// the real machine under every (cache, bandwidth) allocation — vC2M itself
// is the measurement harness — then feed the dense e(c,b) tables to the
// allocator. This module serializes such surfaces as CSV
// (`c,b,wcet_ms` rows, one per grid point) so measurements from any
// toolchain can be imported.
#pragma once

#include <iosfwd>
#include <string>

#include "model/resource_grid.h"
#include "model/surface.h"

namespace vc2m::workload {

/// Write the dense surface, one `c,b,wcet_ms` row per grid point.
void write_surface_csv(std::ostream& os, const model::WcetFn& surface);
void write_surface_csv(const std::string& path,
                       const model::WcetFn& surface);

/// Parse a dense surface over `grid`. Every grid point must appear exactly
/// once; values must be positive and (physically) monotone non-increasing
/// in both resources. Throws util::Error otherwise, with `source` (the file
/// name for the path overload) and a 1-based line number in every message.
/// Numeric fields are parsed strictly: trailing characters, NaN/inf, and
/// negative coordinates are rejected. '#' lines and the header are ignored.
model::WcetFn read_surface_csv(std::istream& is,
                               const model::ResourceGrid& grid,
                               const std::string& source = "<surface csv>");
model::WcetFn read_surface_csv(const std::string& path,
                               const model::ResourceGrid& grid);

}  // namespace vc2m::workload
