#include "workload/profile_io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.h"

namespace vc2m::workload {

void write_surface_csv(std::ostream& os, const model::WcetFn& surface) {
  VC2M_CHECK(!surface.empty());
  const auto& g = surface.grid();
  os << "c,b,wcet_ms\n";
  for (unsigned c = g.c_min; c <= g.c_max; ++c)
    for (unsigned b = g.b_min; b <= g.b_max; ++b)
      os << c << ',' << b << ',' << surface.at(c, b).to_ms() << '\n';
}

void write_surface_csv(const std::string& path,
                       const model::WcetFn& surface) {
  std::ofstream f(path);
  VC2M_CHECK_MSG(f.good(), "cannot open " << path);
  write_surface_csv(f, surface);
}

model::WcetFn read_surface_csv(std::istream& is,
                               const model::ResourceGrid& grid) {
  grid.validate();
  model::WcetFn surface(grid);
  std::vector<bool> seen(grid.size(), false);

  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.find("wcet_ms") != std::string::npos) continue;  // header

    std::istringstream ss(line);
    std::string c_s, b_s, w_s;
    if (!std::getline(ss, c_s, ',') || !std::getline(ss, b_s, ',') ||
        !std::getline(ss, w_s))
      throw util::Error("malformed surface CSV line: " + line);

    unsigned c = 0, b = 0;
    double wcet_ms = 0;
    try {
      c = static_cast<unsigned>(std::stoul(c_s));
      b = static_cast<unsigned>(std::stoul(b_s));
      wcet_ms = std::stod(w_s);
    } catch (const std::exception&) {
      throw util::Error("non-numeric field in surface CSV line: " + line);
    }
    if (!grid.contains(c, b))
      throw util::Error("surface point outside the grid: " + line);
    if (wcet_ms <= 0)
      throw util::Error("non-positive WCET in surface CSV line: " + line);
    const std::size_t idx = grid.index(c, b);
    if (seen[idx])
      throw util::Error("duplicate surface point: " + line);
    seen[idx] = true;
    surface.set(c, b,
                util::Time::ns(static_cast<std::int64_t>(wcet_ms * 1e6 + 0.5)));
  }

  for (unsigned c = grid.c_min; c <= grid.c_max; ++c)
    for (unsigned b = grid.b_min; b <= grid.b_max; ++b)
      if (!seen[grid.index(c, b)])
        throw util::Error("surface CSV missing point (" + std::to_string(c) +
                          "," + std::to_string(b) + ")");

  if (!surface.monotone_nonincreasing())
    throw util::Error(
        "surface is not monotone non-increasing in cache/bandwidth — "
        "measurement noise must be smoothed before import");
  return surface;
}

model::WcetFn read_surface_csv(const std::string& path,
                               const model::ResourceGrid& grid) {
  std::ifstream f(path);
  if (!f.good()) throw util::Error("cannot open " + path);
  return read_surface_csv(f, grid);
}

}  // namespace vc2m::workload
