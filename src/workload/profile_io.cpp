#include "workload/profile_io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.h"
#include "util/file.h"
#include "workload/csv_field.h"

namespace vc2m::workload {

void write_surface_csv(std::ostream& os, const model::WcetFn& surface) {
  VC2M_CHECK(!surface.empty());
  const auto& g = surface.grid();
  os << "c,b,wcet_ms\n";
  for (unsigned c = g.c_min; c <= g.c_max; ++c)
    for (unsigned b = g.b_min; b <= g.b_max; ++b)
      os << c << ',' << b << ',' << surface.at(c, b).to_ms() << '\n';
}

void write_surface_csv(const std::string& path,
                       const model::WcetFn& surface) {
  auto f = util::open_output_file(path, "WCET surface CSV");
  write_surface_csv(f, surface);
  util::close_output_file(f, path, "WCET surface CSV");
}

model::WcetFn read_surface_csv(std::istream& is,
                               const model::ResourceGrid& grid,
                               const std::string& source) {
  grid.validate();
  model::WcetFn surface(grid);
  std::vector<bool> seen(grid.size(), false);
  std::vector<std::size_t> seen_line(grid.size(), 0);

  detail::ParseContext ctx{source, 0, {}};
  std::string line;
  while (std::getline(is, line)) {
    ++ctx.lineno;
    ctx.line = line;
    if (line.empty() || line[0] == '#') continue;
    if (line.find("wcet_ms") != std::string::npos) continue;  // header

    std::istringstream ss(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    if (fields.size() != 3)
      ctx.fail("expected 3 fields (c,b,wcet_ms), got " +
               std::to_string(fields.size()));

    const auto c =
        static_cast<unsigned>(detail::parse_unsigned(ctx, fields[0], "c"));
    const auto b =
        static_cast<unsigned>(detail::parse_unsigned(ctx, fields[1], "b"));
    const double wcet_ms = detail::parse_double(ctx, fields[2], "wcet_ms");
    if (!grid.contains(c, b)) ctx.fail("surface point outside the grid");
    if (wcet_ms <= 0) ctx.fail("non-positive WCET");
    const std::size_t idx = grid.index(c, b);
    if (seen[idx])
      ctx.fail("duplicate surface point (first at line " +
               std::to_string(seen_line[idx]) + ")");
    seen[idx] = true;
    seen_line[idx] = ctx.lineno;
    surface.set(c, b,
                util::Time::ns(static_cast<std::int64_t>(wcet_ms * 1e6 + 0.5)));
  }

  for (unsigned c = grid.c_min; c <= grid.c_max; ++c)
    for (unsigned b = grid.b_min; b <= grid.b_max; ++b)
      if (!seen[grid.index(c, b)])
        throw util::Error(source + ": surface CSV missing point (" +
                          std::to_string(c) + "," + std::to_string(b) + ")");

  if (!surface.monotone_nonincreasing())
    throw util::Error(
        source +
        ": surface is not monotone non-increasing in cache/bandwidth — "
        "measurement noise must be smoothed before import");
  return surface;
}

model::WcetFn read_surface_csv(const std::string& path,
                               const model::ResourceGrid& grid) {
  std::ifstream f(path);
  if (!f.good()) throw util::Error("cannot open " + path);
  return read_surface_csv(f, grid, path);
}

}  // namespace vc2m::workload
