// Random real-time workload generation following §5.1 of the paper.
//
// Each taskset contains implicit-deadline periodic tasks with harmonic
// periods uniformly spread over [100, 1100] ms and utilizations drawn from a
// uniform or one of three bimodal distributions. WCET surfaces come from
// randomly chosen PARSEC profiles: a task's maximum WCET is u_i · p_i, its
// reference WCET is that divided by the benchmark's maximum slowdown factor
// s_k^max, and e_i(c,b) = e*_i · s_k(c,b). Tasks are generated until the
// total reference utilization reaches the target (the last task is scaled
// to land exactly on it).
#pragma once

#include <string>
#include <vector>

#include "model/resource_grid.h"
#include "model/task.h"
#include "util/rng.h"
#include "workload/parsec.h"

namespace vc2m::workload {

/// Task-utilization distributions of §5.1. The bimodal variants draw from
/// U[0.1,0.4] with probability q and from U[0.5,0.9] with probability 1-q,
/// where q = 8/9 (light), 6/9 (medium), 4/9 (heavy).
enum class UtilDist { kUniform, kBimodalLight, kBimodalMedium, kBimodalHeavy };

std::string to_string(UtilDist d);

/// Draw one task utilization from `dist`.
double draw_utilization(UtilDist dist, util::Rng& rng);

struct GeneratorConfig {
  model::ResourceGrid grid;          ///< platform resource grid
  double target_ref_utilization = 1.0;  ///< Σ e*_i/p_i to reach
  UtilDist dist = UtilDist::kUniform;
  int num_vms = 1;                   ///< tasks are assigned round-robin
  util::Time period_lo = util::Time::ms(100);
  util::Time period_hi = util::Time::ms(1100);
  /// Entries in the per-taskset harmonic period menu ({base · 2^k}).
  unsigned harmonic_levels = 4;
};

/// Generate one taskset. Deterministic given the RNG state.
model::Taskset generate_taskset(const GeneratorConfig& cfg, util::Rng& rng);

/// The per-taskset harmonic period menu: base ~ U[lo, hi/2^(levels-1)),
/// menu = {base · 2^k | k < levels}. All entries lie in [lo, hi].
std::vector<util::Time> harmonic_period_menu(const GeneratorConfig& cfg,
                                             util::Rng& rng);

}  // namespace vc2m::workload
