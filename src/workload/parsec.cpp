#include "workload/parsec.h"

#include <cmath>

#include "util/error.h"

namespace vc2m::workload {

double miss_curve(double c, double c_max, double miss_amp, double ws_decay) {
  // Exponential working-set curve, pinned to miss_amp at c = 1 and to 1 at
  // c = c_max. Values below c = 1 model the cache-disabled point.
  const double span = c_max - 1.0;
  VC2M_CHECK(span > 0);
  const double e_c = std::exp(-(c - 1.0) / ws_decay);
  const double e_max = std::exp(-span / ws_decay);
  const double shape = (e_c - e_max) / (1.0 - e_max);
  return 1.0 + (miss_amp - 1.0) * shape;
}

double ParsecProfile::miss_rel(double c, const model::ResourceGrid& grid) const {
  return miss_curve(c, static_cast<double>(grid.c_max), miss_amp, ws_decay);
}

namespace {
/// DRAM minimum-service floor: even a stream squeezed to one bandwidth
/// partition retains a fraction of peak service (row-buffer batching,
/// prefetch trains), so the stall factor saturates. Keeps the modeled
/// maximum WCETs in the 2–6× range the paper's testbed exhibits.
constexpr double kMaxStall = 4.0;
}  // namespace

double ParsecProfile::slowdown(double c, double b,
                               const model::ResourceGrid& grid) const {
  const double miss = miss_rel(c, grid);
  // Bandwidth demand grows with the miss rate; stalls appear when the
  // allocation b cannot carry the demand, saturating at the service floor.
  const double demand = bw_sat * miss;
  const double stall = std::min(kMaxStall, std::max(1.0, demand / b));
  const double t = (1.0 - mem_frac) + mem_frac * miss * stall;
  // Normalize so that s(C, B) == 1 even if bw_sat > B on a small platform.
  const double ref_stall = std::max(1.0, bw_sat / static_cast<double>(grid.b_max));
  const double t_ref = (1.0 - mem_frac) + mem_frac * ref_stall;
  return t / t_ref;
}

model::Surface ParsecProfile::surface(const model::ResourceGrid& grid) const {
  model::Surface s(grid);
  for (unsigned c = grid.c_min; c <= grid.c_max; ++c)
    for (unsigned b = grid.b_min; b <= grid.b_max; ++b)
      s.set(c, b, slowdown(c, b, grid));
  return s;
}

double ParsecProfile::max_slowdown(const model::ResourceGrid& grid) const {
  // Cache disabled: every access misses — nocache_amp beyond the 1-partition
  // miss rate, and the compute portion pays the instruction-fetch penalty.
  // Worst-case bandwidth: b = 1 partition (stall saturates at the service
  // floor, as in slowdown()).
  const double miss = miss_rel(1.0, grid) * nocache_amp;
  const double stall = std::min(kMaxStall, std::max(1.0, bw_sat * miss));
  const double t =
      (1.0 - mem_frac) * nocache_cpu_penalty + mem_frac * miss * stall;
  const double ref_stall = std::max(1.0, bw_sat / static_cast<double>(grid.b_max));
  const double t_ref = (1.0 - mem_frac) + mem_frac * ref_stall;
  return t / t_ref;
}

const std::vector<ParsecProfile>& parsec_suite() {
  // Parameters chosen to span PARSEC's published characterization [1]:
  // compute-bound (blackscholes, swaptions), cache-sensitive with moderate
  // working sets (bodytrack, freqmine, dedup, ferret), streaming /
  // bandwidth-bound (streamcluster, canneal), and mixed (the rest).
  //                     name             mem    amp   ws    sat  nocache
  // (nocache_cpu_penalty keeps its 3.5 default everywhere)
  static const std::vector<ParsecProfile> kSuite = {
      {"blackscholes", 0.10, 1.40, 3.0, 2.0, 1.30},
      {"bodytrack", 0.36, 2.40, 5.5, 6.0, 1.30},
      {"canneal", 0.75, 1.40, 9.0, 11.0, 1.15},
      {"dedup", 0.58, 2.80, 6.5, 8.0, 1.25},
      {"facesim", 0.52, 2.20, 7.0, 7.0, 1.25},
      {"ferret", 0.62, 2.50, 6.5, 7.0, 1.20},
      {"fluidanimate", 0.46, 2.30, 5.5, 6.5, 1.30},
      {"freqmine", 0.60, 2.80, 5.0, 7.5, 1.20},
      {"streamcluster", 0.78, 1.35, 8.0, 12.0, 1.15},
      {"swaptions", 0.05, 1.25, 3.0, 1.5, 1.40},
      {"vips", 0.50, 2.00, 6.5, 8.0, 1.25},
      {"x264", 0.55, 1.80, 7.0, 8.5, 1.25},
  };
  return kSuite;
}

const ParsecProfile& find_profile(const std::string& name) {
  for (const auto& p : parsec_suite())
    if (p.name == name) return p;
  throw util::Error("unknown PARSEC profile: " + name);
}

}  // namespace vc2m::workload
