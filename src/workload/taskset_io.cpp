#include "workload/taskset_io.h"

#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "util/error.h"
#include "util/file.h"
#include "workload/csv_field.h"
#include "workload/parsec.h"

namespace vc2m::workload {

void write_taskset_csv(std::ostream& os, const model::Taskset& tasks) {
  os << "vm,period_ms,ref_wcet_ms,benchmark\n";
  for (const auto& t : tasks) {
    VC2M_CHECK_MSG(!t.label.empty(), "task lacks a benchmark label");
    os << t.vm << ',' << t.period.to_ms() << ','
       << t.reference_wcet().to_ms() << ',' << t.label << '\n';
  }
}

void write_taskset_csv(const std::string& path, const model::Taskset& tasks) {
  auto f = util::open_output_file(path, "taskset CSV");
  write_taskset_csv(f, tasks);
  util::close_output_file(f, path, "taskset CSV");
}

model::Taskset read_taskset_csv(std::istream& is,
                                const model::ResourceGrid& grid,
                                const std::string& source) {
  grid.validate();
  model::Taskset tasks;
  std::set<std::string> seen_rows;
  detail::ParseContext ctx{source, 0, {}};
  std::string line;
  while (std::getline(is, line)) {
    ++ctx.lineno;
    ctx.line = line;
    if (line.empty() || line[0] == '#') continue;
    if (line.find("period_ms") != std::string::npos) continue;  // header

    std::istringstream ss(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    if (fields.size() != 4)
      ctx.fail("expected 4 fields (vm,period_ms,ref_wcet_ms,benchmark), got " +
               std::to_string(fields.size()));

    const auto vm = detail::parse_int(ctx, fields[0], "vm");
    const double period_ms = detail::parse_double(ctx, fields[1], "period_ms");
    const double wcet_ms = detail::parse_double(ctx, fields[2], "ref_wcet_ms");
    const std::string& bench = fields[3];
    if (vm < 0) ctx.fail("negative vm id");
    if (period_ms <= 0 || wcet_ms <= 0 || wcet_ms > period_ms)
      ctx.fail("implausible task parameters (need 0 < ref_wcet_ms <= "
               "period_ms)");
    if (bench.empty()) ctx.fail("empty benchmark field");
    if (!seen_rows.insert(line).second) ctx.fail("duplicate task row");

    const ParsecProfile* profile = nullptr;
    try {
      profile = &find_profile(bench);
    } catch (const util::Error& e) {
      ctx.fail(e.what());
    }
    model::Task t;
    t.vm = static_cast<int>(vm);
    t.period = util::Time::ns(static_cast<std::int64_t>(period_ms * 1e6));
    const auto ref =
        util::Time::ns(static_cast<std::int64_t>(wcet_ms * 1e6 + 0.5));
    t.wcet = model::WcetFn::from_slowdown(ref, profile->surface(grid));
    t.max_wcet = util::Time::ns(static_cast<std::int64_t>(
        static_cast<double>(ref.raw_ns()) * profile->max_slowdown(grid)));
    t.label = bench;
    tasks.push_back(std::move(t));
  }
  if (tasks.empty())
    throw util::Error(source + ": taskset CSV contained no tasks");
  return tasks;
}

model::Taskset read_taskset_csv(const std::string& path,
                                const model::ResourceGrid& grid) {
  std::ifstream f(path);
  if (!f.good()) throw util::Error("cannot open " + path);
  return read_taskset_csv(f, grid, path);
}

}  // namespace vc2m::workload
