#include "workload/taskset_io.h"

#include <fstream>
#include <sstream>

#include "util/error.h"
#include "workload/parsec.h"

namespace vc2m::workload {

void write_taskset_csv(std::ostream& os, const model::Taskset& tasks) {
  os << "vm,period_ms,ref_wcet_ms,benchmark\n";
  for (const auto& t : tasks) {
    VC2M_CHECK_MSG(!t.label.empty(), "task lacks a benchmark label");
    os << t.vm << ',' << t.period.to_ms() << ','
       << t.reference_wcet().to_ms() << ',' << t.label << '\n';
  }
}

void write_taskset_csv(const std::string& path, const model::Taskset& tasks) {
  std::ofstream f(path);
  VC2M_CHECK_MSG(f.good(), "cannot open " << path);
  write_taskset_csv(f, tasks);
}

model::Taskset read_taskset_csv(std::istream& is,
                                const model::ResourceGrid& grid) {
  grid.validate();
  model::Taskset tasks;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.find("period_ms") != std::string::npos) continue;  // header

    std::istringstream ss(line);
    std::string vm_s, period_s, wcet_s, bench;
    if (!std::getline(ss, vm_s, ',') || !std::getline(ss, period_s, ',') ||
        !std::getline(ss, wcet_s, ',') || !std::getline(ss, bench))
      throw util::Error("malformed taskset CSV line: " + line);

    double period_ms = 0, wcet_ms = 0;
    int vm = 0;
    try {
      vm = std::stoi(vm_s);
      period_ms = std::stod(period_s);
      wcet_ms = std::stod(wcet_s);
    } catch (const std::exception&) {
      throw util::Error("non-numeric field in taskset CSV line: " + line);
    }
    if (period_ms <= 0 || wcet_ms <= 0 || wcet_ms > period_ms)
      throw util::Error("implausible task parameters in line: " + line);

    const auto& profile = find_profile(bench);
    model::Task t;
    t.vm = vm;
    t.period = util::Time::ns(static_cast<std::int64_t>(period_ms * 1e6));
    const auto ref =
        util::Time::ns(static_cast<std::int64_t>(wcet_ms * 1e6 + 0.5));
    t.wcet = model::WcetFn::from_slowdown(ref, profile.surface(grid));
    t.max_wcet = util::Time::ns(static_cast<std::int64_t>(
        static_cast<double>(ref.raw_ns()) * profile.max_slowdown(grid)));
    t.label = bench;
    tasks.push_back(std::move(t));
  }
  if (tasks.empty()) throw util::Error("taskset CSV contained no tasks");
  return tasks;
}

model::Taskset read_taskset_csv(const std::string& path,
                                const model::ResourceGrid& grid) {
  std::ifstream f(path);
  if (!f.good()) throw util::Error("cannot open " + path);
  return read_taskset_csv(f, grid);
}

}  // namespace vc2m::workload
