// Deterministic digest of a solve result, pinnable in a scenario's
// "expect.digest" field.
//
// The format is byte-compatible with tests/golden_util.h (the frozen
// engine.golden digests): "sched=S|cores=N|cache=..|bw=..|map=..|vhash=H"
// where H is an FNV-1a hash over every VCPU's period, owner, served tasks,
// and full budget surface in raw nanoseconds. test_scenario.cpp pins the
// two implementations against each other, so a scenario digest carries the
// same bit-identity guarantee as the golden suite.
#pragma once

#include <string>

#include "core/strategy.h"

namespace vc2m::scenario {

std::string solve_digest(const core::SolveResult& res);

/// FNV-1a over raw bytes as 16 lowercase hex chars. Used as the scenario
/// content hash stored in checkpoint/report records, so --resume detects a
/// scenario file edited since its record was checkpointed.
std::string text_digest(const std::string& text);

}  // namespace vc2m::scenario
