#include "scenario/digest.h"

#include <cstdint>
#include <cstdio>
#include <sstream>

namespace vc2m::scenario {

namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t vcpu_hash(const std::vector<model::Vcpu>& vcpus) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const auto& v : vcpus) {
    h = fnv1a(h, static_cast<std::uint64_t>(v.period.raw_ns()));
    h = fnv1a(h, static_cast<std::uint64_t>(v.vm));
    for (const std::size_t t : v.tasks) h = fnv1a(h, t);
    const auto& g = v.budget.grid();
    for (unsigned c = g.c_min; c <= g.c_max; ++c)
      for (unsigned b = g.b_min; b <= g.b_max; ++b)
        h = fnv1a(h, static_cast<std::uint64_t>(v.budget.at(c, b).raw_ns()));
  }
  return h;
}

}  // namespace

std::string solve_digest(const core::SolveResult& res) {
  const core::HvAllocResult& m = res.mapping;
  std::ostringstream os;
  os << "sched=" << (res.schedulable ? 1 : 0) << "|cores=" << m.cores_used
     << "|cache=";
  for (std::size_t k = 0; k < m.cache.size(); ++k)
    os << (k ? "," : "") << m.cache[k];
  os << "|bw=";
  for (std::size_t k = 0; k < m.bw.size(); ++k)
    os << (k ? "," : "") << m.bw[k];
  os << "|map=";
  for (std::size_t k = 0; k < m.vcpus_on_core.size(); ++k) {
    if (k) os << ";";
    for (std::size_t i = 0; i < m.vcpus_on_core[k].size(); ++i)
      os << (i ? "," : "") << m.vcpus_on_core[k][i];
  }
  char hex[24];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(vcpu_hash(res.vcpus)));
  os << "|vhash=" << hex;
  return os.str();
}

std::string text_digest(const std::string& text) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  char hex[24];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(h));
  return hex;
}

}  // namespace vc2m::scenario
