#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "core/strategy.h"
#include "obs/decision_log.h"
#include "obs/json.h"
#include "scenario/digest.h"
#include "sim/enforcement.h"
#include "sim/faults.h"
#include "util/error.h"

namespace vc2m::scenario {

namespace {

using obs::json::Value;
using Kind = Value::Kind;

/// Semantic-layer errors mirror the parser's own format: the source name,
/// what went wrong, and the byte offset of the offending token.
[[noreturn]] void fail_at(const std::string& source, const std::string& msg,
                          std::size_t offset) {
  std::ostringstream os;
  os << source << ": " << msg << " at offset " << offset;
  throw util::Error(os.str());
}

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "boolean";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "value";
}

/// Strict object reader: every member must be claimed by exactly one
/// get_*() call; finish() rejects whatever is left, pointing at its key.
class ObjectReader {
 public:
  ObjectReader(const Value& v, const std::string& source,
               const std::string& what)
      : v_(v), source_(source), what_(what) {
    if (v.kind != Kind::kObject)
      fail_at(source_, what_ + " must be an object, got " +
                           kind_name(v.kind), v.offset);
  }

  const Value* claim(const std::string& key, Kind kind) {
    const Value* m = v_.find(key);
    if (!m) return nullptr;
    claimed_.insert(key);
    if (m->kind != kind)
      fail_at(source_, what_ + " key '" + key + "' must be a " +
                           kind_name(kind) + ", got " + kind_name(m->kind),
              m->offset);
    return m;
  }

  std::string get_string(const std::string& key, const std::string& dflt) {
    const Value* m = claim(key, Kind::kString);
    return m ? m->str : dflt;
  }

  std::string require_string(const std::string& key) {
    const Value* m = claim(key, Kind::kString);
    if (!m)
      fail_at(source_, what_ + " is missing required string key '" + key +
                           "'", v_.offset);
    return m->str;
  }

  double require_number(const std::string& key) {
    const Value* m = claim(key, Kind::kNumber);
    if (!m)
      fail_at(source_, what_ + " is missing required number key '" + key +
                           "'", v_.offset);
    return m->number;
  }

  /// A non-negative integer-valued number, or `dflt` when absent.
  std::uint64_t get_index(const std::string& key, std::uint64_t dflt) {
    const Value* m = claim(key, Kind::kNumber);
    if (!m) return dflt;
    if (m->number < 0 || m->number != std::floor(m->number))
      fail_at(source_, what_ + " key '" + key +
                           "' must be a non-negative integer", m->offset);
    return static_cast<std::uint64_t>(m->number);
  }

  /// An integer in [1, cap], narrowed to int, or `dflt` when absent. The
  /// bound check runs on the parsed double before any cast, so a value
  /// past INT_MAX (e.g. 2^32 + 1) fails loudly instead of wrapping into
  /// range.
  int get_int(const std::string& key, int dflt, int cap) {
    const Value* m = claim(key, Kind::kNumber);
    if (!m) return dflt;
    if (m->number != std::floor(m->number) || m->number < 1 ||
        m->number > static_cast<double>(cap))
      fail_at(source_, what_ + " key '" + key + "' must be an integer in "
                           "1.." + std::to_string(cap), m->offset);
    return static_cast<int>(m->number);
  }

  bool get_bool(const std::string& key, bool dflt) {
    const Value* m = claim(key, Kind::kBool);
    return m ? m->boolean : dflt;
  }

  bool has(const std::string& key) const { return v_.find(key) != nullptr; }

  /// Reject every member no claim() touched — the unknown-key gate.
  void finish() const {
    for (const auto& [key, member] : v_.object)
      if (!claimed_.count(key))
        fail_at(source_, what_ + " has unknown key '" + key + "'",
                member.key_offset);
  }

  const Value& raw() const { return v_; }

 private:
  const Value& v_;
  const std::string& source_;
  std::string what_;
  std::set<std::string> claimed_;
};

WorkloadSpec parse_workload(const Value& v, const std::string& source,
                            const std::string& base_dir) {
  ObjectReader r(v, source, "'workload'");
  WorkloadSpec w;
  if (r.has("file")) {
    w.kind = WorkloadSpec::Kind::kFile;
    const std::string rel = r.require_string("file");
    if (rel.empty())
      fail_at(source, "'workload' key 'file' must not be empty", v.offset);
    std::filesystem::path p(rel);
    w.file = p.is_absolute() || base_dir.empty()
                 ? rel
                 : (std::filesystem::path(base_dir) / p).string();
    r.finish();
    return w;
  }
  w.kind = WorkloadSpec::Kind::kGenerate;
  w.util = r.require_number("util");
  if (!(w.util > 0))
    fail_at(source, "'workload' key 'util' must be positive", v.offset);
  const std::string dist = r.get_string("dist", "uniform");
  if (dist == "uniform") w.dist = workload::UtilDist::kUniform;
  else if (dist == "light") w.dist = workload::UtilDist::kBimodalLight;
  else if (dist == "medium") w.dist = workload::UtilDist::kBimodalMedium;
  else if (dist == "heavy") w.dist = workload::UtilDist::kBimodalHeavy;
  else
    fail_at(source, "'workload' key 'dist' must be one of "
                    "uniform|light|medium|heavy, got '" + dist + "'",
            v.find("dist")->offset);
  w.vms = r.get_int("vms", 1, kMaxVms);
  r.finish();
  return w;
}

SimulateSpec parse_simulate(const Value& v, const std::string& source) {
  ObjectReader r(v, source, "'simulate'");
  SimulateSpec s;
  s.hyperperiods = r.get_int("hyperperiods", 3, kMaxHyperperiods);
  r.finish();
  return s;
}

Expectation parse_expect(const Value& v, const std::string& source) {
  ObjectReader r(v, source, "'expect'");
  Expectation e;
  const std::string verdict = r.require_string("verdict");
  if (verdict == "schedulable") e.schedulable = true;
  else if (verdict == "unschedulable") e.schedulable = false;
  else
    fail_at(source, "'expect' key 'verdict' must be schedulable or "
                    "unschedulable, got '" + verdict + "'",
            v.find("verdict")->offset);
  e.digest = r.get_string("digest", "");
  if (const Value* m = r.claim("trace_clean", Kind::kBool))
    e.trace_clean = m->boolean;
  if (r.has("min_faults_injected"))
    e.min_faults_injected = r.get_index("min_faults_injected", 0);
  if (r.has("max_deadline_misses"))
    e.max_deadline_misses = r.get_index("max_deadline_misses", 0);
  if (const Value* m = r.claim("rejection_constraints", Kind::kArray)) {
    for (const Value& item : m->array) {
      if (item.kind != Kind::kString)
        fail_at(source, "'expect' key 'rejection_constraints' must hold "
                        "strings", item.offset);
      obs::DecisionConstraint c;
      if (!obs::decision_constraint_from_string(item.str, c) ||
          c == obs::DecisionConstraint::kNone)
        fail_at(source, "'expect' names unknown rejection constraint '" +
                            item.str + "'", item.offset);
      e.rejection_constraints.push_back(item.str);
    }
  }
  r.finish();
  return e;
}

bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
  });
}

}  // namespace

Scenario load_scenario(const std::string& text, const std::string& source) {
  const Value root = obs::json::parse(text, source);
  ObjectReader r(root, source, "scenario");

  Scenario sc;
  sc.source = source;
  sc.content_hash = text_digest(text);
  const std::string schema = r.require_string("schema");
  if (schema != kScenarioSchema)
    fail_at(source, "unsupported scenario schema '" + schema + "' (want " +
                        std::string(kScenarioSchema) + ")",
            root.find("schema")->offset);

  sc.name = r.require_string("name");
  if (!valid_name(sc.name))
    fail_at(source, "'name' must match [a-z0-9-]+, got '" + sc.name + "'",
            root.find("name")->offset);
  sc.description = r.get_string("description", "");

  sc.platform = r.get_string("platform", "A");
  if (sc.platform != "A" && sc.platform != "B" && sc.platform != "C")
    fail_at(source, "'platform' must be A, B, or C, got '" + sc.platform +
                        "'", root.find("platform")->offset);

  sc.solution = r.get_string("solution", "flat");
  if (!core::StrategyRegistry::instance().find(sc.solution))
    fail_at(source, "'solution' names no registered strategy: '" +
                        sc.solution + "'", root.find("solution")->offset);

  sc.seed = r.get_index("seed", 42);

  const Value* wl = r.claim("workload", Kind::kObject);
  if (!wl)
    fail_at(source, "scenario is missing required object key 'workload'",
            root.offset);
  std::string base_dir;
  if (!source.empty()) {
    std::error_code ec;
    base_dir = std::filesystem::path(source).parent_path().string();
  }
  sc.workload = parse_workload(*wl, source, base_dir);

  sc.faults = r.get_string("faults", "");
  if (!sc.faults.empty()) {
    try {
      (void)sim::parse_fault_spec(sc.faults);
    } catch (const util::Error& e) {
      fail_at(source, std::string("'faults': ") + e.what(),
              root.find("faults")->offset);
    }
  }

  sc.policy = r.get_string("policy", "strict");
  if (!sim::enforcement_policy_from_string(sc.policy))
    fail_at(source, "'policy' must be strict|kill|throttle|degrade, got '" +
                        sc.policy + "'", root.find("policy")->offset);

  if (const Value* s = r.claim("simulate", Kind::kObject))
    sc.simulate = parse_simulate(*s, source);

  const Value* ex = r.claim("expect", Kind::kObject);
  if (!ex)
    fail_at(source, "scenario is missing required object key 'expect'",
            root.offset);
  sc.expect = parse_expect(*ex, source);
  r.finish();

  // Cross-field semantics: fail at load, not halfway through a run.
  if (sc.simulate && !sc.expect.schedulable)
    fail_at(source, "'simulate' requires an expected verdict of "
                    "schedulable (nothing to deploy otherwise)", ex->offset);
  if (!sc.simulate &&
      (sc.expect.trace_clean || sc.expect.min_faults_injected ||
       sc.expect.max_deadline_misses))
    fail_at(source, "'expect' has runtime expectations (trace_clean / "
                    "min_faults_injected / max_deadline_misses) but the "
                    "scenario has no 'simulate' block", ex->offset);
  if (sc.expect.min_faults_injected && sc.faults.empty())
    fail_at(source, "'expect' key 'min_faults_injected' requires a "
                    "'faults' plan", ex->offset);
  if (!sc.expect.rejection_constraints.empty() && sc.expect.schedulable)
    fail_at(source, "'expect' key 'rejection_constraints' requires an "
                    "unschedulable verdict", ex->offset);
  return sc;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream f(path);
  if (!f.good())
    throw util::Error("cannot open scenario file '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  return load_scenario(buf.str(), path);
}

std::vector<std::string> discover_scenario_files(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".json")
        files.push_back(entry.path().string());
    }
    if (ec)
      throw util::Error("cannot list scenario directory '" + path +
                        "': " + ec.message());
    if (files.empty())
      throw util::Error("scenario directory '" + path +
                        "' holds no *.json files");
    std::sort(files.begin(), files.end());
    return files;
  }
  if (!fs::exists(path, ec))
    throw util::Error("scenario path '" + path + "' does not exist");
  return {path};
}

}  // namespace vc2m::scenario
