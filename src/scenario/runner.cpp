#include "scenario/runner.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <system_error>

#include "core/strategy.h"
#include "model/platform.h"
#include "obs/bench_report.h"
#include "obs/explain.h"
#include "obs/trace_check.h"
#include "scenario/digest.h"
#include "sim/deploy.h"
#include "sim/faults.h"
#include "sim/simulation.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/taskset_io.h"

namespace vc2m::scenario {

namespace {

model::PlatformSpec platform_of(const std::string& name) {
  if (name == "B") return model::PlatformSpec::B();
  if (name == "C") return model::PlatformSpec::C();
  return model::PlatformSpec::A();
}

model::Taskset make_taskset(const Scenario& sc,
                            const model::PlatformSpec& platform) {
  if (sc.workload.kind == WorkloadSpec::Kind::kFile)
    return workload::read_taskset_csv(sc.workload.file, platform.grid);
  workload::GeneratorConfig gen;
  gen.grid = platform.grid;
  gen.target_ref_utilization = sc.workload.util;
  gen.dist = sc.workload.dist;
  gen.num_vms = sc.workload.vms;
  util::Rng rng(sc.seed);
  return workload::generate_taskset(gen, rng);
}

void judge(ScenarioRecord& r, const Scenario& sc) {
  const Expectation& e = sc.expect;
  auto fail = [&](const std::string& msg) { r.failures.push_back(msg); };

  if (r.schedulable != e.schedulable)
    fail(std::string("verdict: expected ") +
         (e.schedulable ? "schedulable" : "unschedulable") + ", got " +
         (r.schedulable ? "schedulable" : "unschedulable"));
  if (!e.digest.empty() && r.digest != e.digest)
    fail("digest: expected " + e.digest + ", got " + r.digest);
  for (const std::string& want : e.rejection_constraints) {
    if (std::find(r.rejection_constraints.begin(),
                  r.rejection_constraints.end(),
                  want) == r.rejection_constraints.end())
      fail("rejection chain lacks constraint '" + want + "'");
  }
  if (r.simulated) {
    if (e.trace_clean && *e.trace_clean != (r.trace_violations == 0)) {
      std::ostringstream os;
      os << "trace_clean: expected " << (*e.trace_clean ? "true" : "false")
         << ", checker found " << r.trace_violations << " violation(s)";
      fail(os.str());
    }
    if (e.min_faults_injected && r.faults_injected < *e.min_faults_injected) {
      std::ostringstream os;
      os << "faults_injected: expected >= " << *e.min_faults_injected
         << ", got " << r.faults_injected;
      fail(os.str());
    }
    if (e.max_deadline_misses && r.deadline_misses > *e.max_deadline_misses) {
      std::ostringstream os;
      os << "deadline_misses: expected <= " << *e.max_deadline_misses
         << ", got " << r.deadline_misses;
      fail(os.str());
    }
  }
  r.passed = r.failures.empty();
}

}  // namespace

ScenarioRecord run_scenario(const Scenario& sc) {
  ScenarioRecord r;
  r.name = sc.name;
  r.file = sc.source.empty()
               ? sc.name + ".json"
               : std::filesystem::path(sc.source).filename().string();
  r.scenario_hash = sc.content_hash;

  const auto platform = platform_of(sc.platform);
  const auto tasks = make_taskset(sc, platform);
  const auto& strat = core::StrategyRegistry::instance().require(sc.solution);

  // Solve with decision recording: bit-identical to a bare core::solve
  // (test_explain pins this), and the rejection chain comes for free.
  util::Rng rng(sc.seed);
  core::SolveResult res;
  const auto explain = obs::explain_solve(strat, tasks, platform, {}, rng,
                                          &res);
  r.schedulable = res.schedulable;
  r.digest = solve_digest(res);
  for (const auto& rej : explain.rejections) {
    const std::string name = obs::to_string(rej.constraint);
    if (std::find(r.rejection_constraints.begin(),
                  r.rejection_constraints.end(),
                  name) == r.rejection_constraints.end())
      r.rejection_constraints.push_back(name);
  }

  if (res.schedulable && sc.simulate) {
    sim::DeployConfig dc;
    dc.release_sync = strat.vm->release_sync();
    dc.capture_trace = true;
    auto sim_cfg = sim::deploy(tasks, res.vcpus, res.mapping, platform, dc);
    const auto policy = sim::enforcement_policy_from_string(sc.policy);
    VC2M_CHECK_MSG(policy.has_value(), "scenario '" << sc.name
                                                    << "': bad policy");
    sim_cfg.enforcement.policy = *policy;
    if (!sc.faults.empty()) sim_cfg.faults = sim::parse_fault_spec(sc.faults);

    sim::Simulation s(sim_cfg);
    const auto horizon =
        model::hyperperiod(tasks) * sc.simulate->hyperperiods;
    s.run(horizon);
    const auto st = s.stats();
    const auto check = obs::check_trace(
        s.trace().events(),
        obs::TraceCheckConfig::from_sim(sim_cfg, horizon));

    r.simulated = true;
    r.jobs_released = st.jobs_released;
    r.jobs_completed = st.jobs_completed;
    r.deadline_misses = st.deadline_misses;
    r.faults_injected = st.faults_injected;
    r.jobs_killed = st.jobs_killed;
    r.jobs_deferred = st.jobs_deferred;
    r.trace_events = s.trace().events().size();
    r.trace_violations = check.total_violations;
  }

  judge(r, sc);
  return r;
}

std::vector<std::size_t> shard_indices(std::size_t total, int index,
                                       int count) {
  VC2M_CHECK_MSG(count >= 1, "--shard: count must be >= 1");
  VC2M_CHECK_MSG(index >= 0 && index < count,
                 "--shard: index " << index << " outside 0.." << count - 1);
  std::vector<std::size_t> out;
  for (std::size_t i = static_cast<std::size_t>(index); i < total;
       i += static_cast<std::size_t>(count))
    out.push_back(i);
  return out;
}

MatrixResult run_matrix(
    const MatrixConfig& cfg,
    const std::function<void(int, int, const std::string&)>& progress) {
  VC2M_CHECK_MSG(cfg.jobs >= 0, "--jobs must be >= 0");

  // Load every scenario up front: a corpus with one broken file fails
  // before any work runs, and duplicate names are caught across shards.
  std::vector<Scenario> all;
  all.reserve(cfg.files.size());
  std::set<std::string> names;
  for (const auto& file : cfg.files) {
    Scenario sc = load_scenario_file(file);
    VC2M_CHECK_MSG(names.insert(sc.name).second,
                   "duplicate scenario name '" << sc.name << "' (in "
                                               << file << ")");
    all.push_back(std::move(sc));
  }

  const auto mine = shard_indices(all.size(), cfg.shard_index,
                                  cfg.shard_count);

  MatrixResult result;
  result.report.git_rev = obs::build_git_rev();
  result.report.corpus = cfg.corpus;
  result.report.shard_index = cfg.shard_index;
  result.report.shard_count = cfg.shard_count;

  // Resume: reuse checkpointed records for scenarios in this shard. A
  // checkpoint that fails the strict reader (e.g. torn by a crash under a
  // pre-atomic-rename build, or hand-edited) downgrades to a warned cold
  // start — resume exists for exactly the runs that may have died badly.
  ScenarioReport checkpoint;
  if (cfg.resume && !cfg.checkpoint.empty()) {
    std::ifstream probe(cfg.checkpoint);
    if (probe.good()) {
      try {
        checkpoint = read_scenario_report(probe, cfg.checkpoint);
      } catch (const util::Error& e) {
        checkpoint = ScenarioReport{};
        result.warnings.push_back("unreadable checkpoint, cold start: " +
                                  std::string(e.what()));
      }
    }
  }

  std::vector<ScenarioRecord> slots(mine.size());
  std::vector<bool> reused(mine.size(), false);
  for (std::size_t k = 0; k < mine.size(); ++k) {
    const Scenario& sc = all[mine[k]];
    if (const ScenarioRecord* prev = checkpoint.find(sc.name)) {
      const std::string file =
          std::filesystem::path(sc.source).filename().string();
      // The content hash must match too: a scenario edited since the
      // checkpoint was written (new expectations, new workload) must
      // re-run, or the resumed report would carry a stale verdict.
      if (prev->file == file && prev->scenario_hash == sc.content_hash) {
        slots[k] = *prev;
        reused[k] = true;
        ++result.resumed;
      }
    }
  }

  std::mutex mu;  // guards slots[], done, checkpoint writes, progress
  int done = 0;
  const int total = static_cast<int>(mine.size());
  // `rec` is null for records already placed in slots[k] (the resumed
  // ones, written before the pool exists). Worker results land in their
  // slot here, under the lock: the checkpoint loop below reads every
  // slot, so a bare `slots[k] = ...` on the worker thread would race it.
  auto on_complete = [&](std::size_t k, ScenarioRecord* rec) {
    std::lock_guard<std::mutex> lock(mu);
    if (rec) {
      slots[k] = std::move(*rec);
      ++result.executed;
    }
    ++done;
    if (!cfg.checkpoint.empty()) {
      ScenarioReport ck;
      ck.git_rev = result.report.git_rev;
      ck.corpus = result.report.corpus;
      ck.shard_index = cfg.shard_index;
      ck.shard_count = cfg.shard_count;
      for (std::size_t j = 0; j < slots.size(); ++j)
        if (!slots[j].name.empty()) ck.records.push_back(slots[j]);
      std::sort(ck.records.begin(), ck.records.end(),
                [](const ScenarioRecord& a, const ScenarioRecord& b) {
                  return a.name < b.name;
                });
      // The checkpoint is rewritten after every scenario, and a crash
      // mid-write is the one moment resume is for — build the new file
      // beside the old one and rename() it into place atomically.
      const std::string tmp = cfg.checkpoint + ".tmp";
      write_scenario_report_file(tmp, ck);
      std::error_code ec;
      std::filesystem::rename(tmp, cfg.checkpoint, ec);
      if (ec)
        throw util::Error("cannot replace scenario checkpoint '" +
                          cfg.checkpoint + "': " + ec.message());
    }
    if (progress) progress(done, total, slots[k].name);
  };

  util::ThreadPool pool(static_cast<unsigned>(cfg.jobs));
  for (std::size_t k = 0; k < mine.size(); ++k) {
    if (reused[k]) {
      on_complete(k, nullptr);
      continue;
    }
    pool.submit([&, k] {
      // A cancelled run skips everything still queued; scenarios already
      // executing finish (and reach the checkpoint) before the pool drains.
      if (cfg.cancel && cfg.cancel->load(std::memory_order_relaxed)) return;
      ScenarioRecord rec = run_scenario(all[mine[k]]);
      on_complete(k, &rec);
    });
  }
  pool.wait();

  result.interrupted =
      cfg.cancel && cfg.cancel->load(std::memory_order_relaxed) &&
      result.executed + result.resumed < static_cast<int>(mine.size());
  result.report.interrupted = result.interrupted;
  for (auto& s : slots)
    if (!s.name.empty()) result.report.records.push_back(std::move(s));
  std::sort(result.report.records.begin(), result.report.records.end(),
            [](const ScenarioRecord& a, const ScenarioRecord& b) {
              return a.name < b.name;
            });
  return result;
}

}  // namespace vc2m::scenario
