#include "scenario/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.h"
#include "util/error.h"
#include "util/file.h"

namespace vc2m::scenario {

namespace {

using obs::json::Value;
using Kind = Value::Kind;

void write_string_array(std::ostream& os, const std::vector<std::string>& v) {
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i)
    os << (i ? ", " : "") << "\"" << obs::json::escape(v[i]) << "\"";
  os << "]";
}

void write_record(std::ostream& os, const ScenarioRecord& r) {
  os << "  {\"name\": \"" << obs::json::escape(r.name) << "\",\n"
     << "   \"file\": \"" << obs::json::escape(r.file) << "\",\n"
     << "   \"scenario_hash\": \"" << obs::json::escape(r.scenario_hash)
     << "\",\n"
     << "   \"verdict\": \""
     << (r.schedulable ? "schedulable" : "unschedulable") << "\",\n"
     << "   \"digest\": \"" << obs::json::escape(r.digest) << "\",\n"
     << "   \"passed\": " << (r.passed ? "true" : "false") << ",\n"
     << "   \"failures\": ";
  write_string_array(os, r.failures);
  os << ",\n   \"rejection_constraints\": ";
  write_string_array(os, r.rejection_constraints);
  os << ",\n   \"simulated\": " << (r.simulated ? "true" : "false");
  if (r.simulated) {
    os << ",\n   \"metrics\": {\"jobs_released\": " << r.jobs_released
       << ", \"jobs_completed\": " << r.jobs_completed
       << ", \"deadline_misses\": " << r.deadline_misses
       << ", \"faults_injected\": " << r.faults_injected
       << ", \"jobs_killed\": " << r.jobs_killed
       << ", \"jobs_deferred\": " << r.jobs_deferred
       << ", \"trace_events\": " << r.trace_events
       << ", \"trace_violations\": " << r.trace_violations << "}";
  }
  os << "}";
}

std::string get_string(const Value& obj, const std::string& key,
                       const std::string& what) {
  const Value* v = obj.find(key);
  VC2M_CHECK_MSG(v && v->kind == Kind::kString,
                 what << ": missing string field '" << key << "'");
  return v->str;
}

bool get_bool(const Value& obj, const std::string& key,
              const std::string& what) {
  const Value* v = obj.find(key);
  VC2M_CHECK_MSG(v && v->kind == Kind::kBool,
                 what << ": missing boolean field '" << key << "'");
  return v->boolean;
}

std::uint64_t get_count(const Value& obj, const std::string& key,
                        const std::string& what) {
  const Value* v = obj.find(key);
  VC2M_CHECK_MSG(v && v->kind == Kind::kNumber && v->number >= 0 &&
                     v->number == std::floor(v->number),
                 what << ": field '" << key
                      << "' must be a non-negative integer");
  return static_cast<std::uint64_t>(v->number);
}

std::vector<std::string> get_string_array(const Value& obj,
                                          const std::string& key,
                                          const std::string& what) {
  const Value* v = obj.find(key);
  VC2M_CHECK_MSG(v && v->kind == Kind::kArray,
                 what << ": missing array field '" << key << "'");
  std::vector<std::string> out;
  for (const Value& item : v->array) {
    VC2M_CHECK_MSG(item.kind == Kind::kString,
                   what << ": field '" << key << "' must hold strings");
    out.push_back(item.str);
  }
  return out;
}

ScenarioRecord parse_record(const Value& v, const std::string& what) {
  VC2M_CHECK_MSG(v.kind == Kind::kObject,
                 what << ": 'scenarios' entries must be objects");
  ScenarioRecord r;
  r.name = get_string(v, "name", what);
  r.file = get_string(v, "file", what);
  r.scenario_hash = get_string(v, "scenario_hash", what);
  const std::string verdict = get_string(v, "verdict", what);
  VC2M_CHECK_MSG(verdict == "schedulable" || verdict == "unschedulable",
                 what << ": bad verdict '" << verdict << "'");
  r.schedulable = verdict == "schedulable";
  r.digest = get_string(v, "digest", what);
  r.passed = get_bool(v, "passed", what);
  r.failures = get_string_array(v, "failures", what);
  r.rejection_constraints = get_string_array(v, "rejection_constraints", what);
  r.simulated = get_bool(v, "simulated", what);
  if (r.simulated) {
    const Value* m = v.find("metrics");
    VC2M_CHECK_MSG(m && m->kind == Kind::kObject,
                   what << ": simulated record lacks a 'metrics' object");
    r.jobs_released = get_count(*m, "jobs_released", what);
    r.jobs_completed = get_count(*m, "jobs_completed", what);
    r.deadline_misses = get_count(*m, "deadline_misses", what);
    r.faults_injected = get_count(*m, "faults_injected", what);
    r.jobs_killed = get_count(*m, "jobs_killed", what);
    r.jobs_deferred = get_count(*m, "jobs_deferred", what);
    r.trace_events = get_count(*m, "trace_events", what);
    r.trace_violations = get_count(*m, "trace_violations", what);
  }
  return r;
}

}  // namespace

const ScenarioRecord* ScenarioReport::find(const std::string& name) const {
  for (const auto& r : records)
    if (r.name == name) return &r;
  return nullptr;
}

void write_scenario_report(std::ostream& os, const ScenarioReport& r) {
  os << "{\n";
  os << "\"schema\": \"" << obs::json::escape(r.schema) << "\",\n";
  os << "\"git_rev\": \"" << obs::json::escape(r.git_rev) << "\",\n";
  os << "\"corpus\": \"" << obs::json::escape(r.corpus) << "\",\n";
  os << "\"shard\": {\"index\": " << r.shard_index
     << ", \"count\": " << r.shard_count << "},\n";
  // Written only when set so complete reports stay byte-identical to
  // reports from builds that predate interruption support.
  if (r.interrupted) os << "\"interrupted\": true,\n";
  os << "\"total\": " << r.records.size() << ",\n";
  os << "\"passed\": " << r.passed() << ",\n";
  os << "\"failed\": " << r.failed() << ",\n";
  os << "\"scenarios\": [";
  for (std::size_t i = 0; i < r.records.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    write_record(os, r.records[i]);
  }
  os << (r.records.empty() ? "" : "\n") << "]\n}\n";
}

void write_scenario_report_file(const std::string& path,
                                const ScenarioReport& r) {
  auto f = util::open_output_file(path, "scenario report");
  write_scenario_report(f, r);
  util::close_output_file(f, path, "scenario report");
}

ScenarioReport read_scenario_report(std::istream& is, const std::string& what,
                                    std::vector<std::string>* notes) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const Value root = obs::json::parse(buf.str(), what);
  VC2M_CHECK_MSG(root.kind == Kind::kObject,
                 what << ": top level must be an object");
  // Forward compatibility: top-level fields this reader does not know are
  // reported through `notes`, never rejected — a newer writer may
  // legitimately add them.
  if (notes) {
    static constexpr const char* kKnown[] = {
        "schema", "git_rev", "corpus", "shard",     "interrupted",
        "total",  "passed",  "failed", "scenarios"};
    for (const auto& [k, v] : root.object) {
      bool hit = false;
      for (const char* known : kKnown) hit = hit || k == known;
      if (!hit)
        notes->push_back(what + ": unknown field '" + k +
                         "' (written by a newer vc2m?) — ignored");
    }
  }
  ScenarioReport r;
  r.schema = get_string(root, "schema", what);
  VC2M_CHECK_MSG(r.schema == kReportSchema,
                 what << ": unsupported schema '" << r.schema << "'");
  r.git_rev = get_string(root, "git_rev", what);
  r.corpus = get_string(root, "corpus", what);
  const Value* shard = root.find("shard");
  VC2M_CHECK_MSG(shard && shard->kind == Kind::kObject,
                 what << ": missing 'shard' object");
  r.shard_index = static_cast<int>(get_count(*shard, "index", what));
  r.shard_count = static_cast<int>(get_count(*shard, "count", what));
  VC2M_CHECK_MSG(r.shard_count >= 1 && r.shard_index < r.shard_count,
                 what << ": bad shard " << r.shard_index << "/"
                      << r.shard_count);
  if (const Value* intr = root.find("interrupted")) {
    VC2M_CHECK_MSG(intr->kind == Kind::kBool,
                   what << ": 'interrupted' must be a boolean");
    r.interrupted = intr->boolean;
  }
  const Value* scenarios = root.find("scenarios");
  VC2M_CHECK_MSG(scenarios && scenarios->kind == Kind::kArray,
                 what << ": missing 'scenarios' array");
  for (const Value& v : scenarios->array) {
    ScenarioRecord rec = parse_record(v, what);
    VC2M_CHECK_MSG(r.find(rec.name) == nullptr,
                   what << ": duplicate scenario '" << rec.name << "'");
    r.records.push_back(std::move(rec));
  }
  VC2M_CHECK_MSG(get_count(root, "total", what) == r.records.size(),
                 what << ": 'total' disagrees with the record count");
  VC2M_CHECK_MSG(get_count(root, "passed", what) == r.passed(),
                 what << ": 'passed' disagrees with the records");
  VC2M_CHECK_MSG(get_count(root, "failed", what) == r.failed(),
                 what << ": 'failed' disagrees with the records");
  return r;
}

ScenarioReport read_scenario_report_file(const std::string& path,
                                         std::vector<std::string>* notes) {
  std::ifstream f(path);
  if (!f.good())
    throw util::Error("cannot open scenario report '" + path + "'");
  return read_scenario_report(f, path, notes);
}

ScenarioReport merge_scenario_reports(const std::vector<ScenarioReport>& in) {
  VC2M_CHECK_MSG(!in.empty(), "merge: no reports given");
  ScenarioReport out;
  out.git_rev = in.front().git_rev;
  out.corpus = in.front().corpus;
  for (const auto& r : in) {
    VC2M_CHECK_MSG(r.corpus == out.corpus,
                   "merge: corpus mismatch ('" << r.corpus << "' vs '"
                                               << out.corpus << "')");
    VC2M_CHECK_MSG(r.git_rev == out.git_rev,
                   "merge: git_rev mismatch ('" << r.git_rev << "' vs '"
                                                << out.git_rev << "')");
    out.interrupted = out.interrupted || r.interrupted;
    for (const auto& rec : r.records) {
      VC2M_CHECK_MSG(out.find(rec.name) == nullptr,
                     "merge: scenario '" << rec.name
                                         << "' appears in two shards");
      out.records.push_back(rec);
    }
  }
  std::sort(out.records.begin(), out.records.end(),
            [](const ScenarioRecord& a, const ScenarioRecord& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace vc2m::scenario
