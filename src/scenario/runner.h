// Scenario execution: one scenario → one deterministic ScenarioRecord, and
// the sharded matrix runner that fans a corpus over the experiment thread
// pool.
//
// run_scenario drives the same paths the CLI does by hand — generate or
// load the taskset, solve through the strategy registry (with decision
// recording, so rejection chains are available to expectations), then for
// simulate scenarios deploy onto the DES under the fault plan and
// enforcement policy and run the trace invariant checker. Every output
// field is a pure function of the scenario file, so records — and therefore
// whole reports — are bit-identical at any --jobs value.
//
// The matrix runner shards by sorted-file index (scenario i belongs to
// shard i mod m: disjoint and exhaustive by construction), checkpoints
// completed records after every scenario (atomically, via temp file +
// rename), and on --resume reuses checkpointed records instead of
// re-running — the final report is identical either way. A record is only
// reused when the scenario file's content hash still matches, so editing
// a scenario invalidates its checkpoint entry.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "scenario/report.h"
#include "scenario/scenario.h"

namespace vc2m::scenario {

/// Execute one scenario and judge its expectations. Never throws for an
/// expectation mismatch (that lands in record.failures); throws util::Error
/// only for broken inputs (unreadable workload file, bad fault spec).
ScenarioRecord run_scenario(const Scenario& sc);

struct MatrixConfig {
  std::vector<std::string> files;  ///< scenario files, pre-sorted
  std::string corpus;              ///< report label (the path argument)
  int jobs = 0;                    ///< pool workers; 0 = hardware
  int shard_index = 0;             ///< this run covers files[i] with
  int shard_count = 1;             ///< i mod shard_count == shard_index
  /// Checkpoint file: atomically replaced (temp file + rename) with all
  /// completed records after each scenario finishes. Empty = no
  /// checkpointing.
  std::string checkpoint;
  /// Reuse records from an existing checkpoint file (matched by scenario
  /// name + file + content hash) instead of re-running them. A missing or
  /// unreadable checkpoint = cold start (the latter with a warning), not
  /// an error.
  bool resume = false;
  /// Cooperative cancellation (SIGINT/SIGTERM): once set, queued scenarios
  /// are skipped, in-flight ones finish (and are checkpointed), and the
  /// result is marked interrupted.
  const std::atomic<bool>* cancel = nullptr;
};

struct MatrixResult {
  ScenarioReport report;
  int executed = 0;  ///< scenarios actually run this invocation
  int resumed = 0;   ///< records reused from the checkpoint
  /// True when cancellation fired before the shard completed; the report
  /// then holds only the finished scenarios and carries interrupted=true.
  bool interrupted = false;
  /// Non-fatal diagnostics (e.g. an unreadable checkpoint downgraded to a
  /// cold start); the CLI prints them to stderr.
  std::vector<std::string> warnings;
};

/// Indices of `total` sorted scenarios that belong to shard
/// `index`/`count`. Shards are disjoint and their union is [0, total).
std::vector<std::size_t> shard_indices(std::size_t total, int index,
                                       int count);

/// Load, execute, and judge every scenario in the configured shard.
/// `progress(done, total, name)`, when set, is invoked (mutex-serialized,
/// possibly from a worker thread) as each scenario completes. Throws
/// util::Error on unloadable scenario files or duplicate scenario names.
MatrixResult run_matrix(
    const MatrixConfig& cfg,
    const std::function<void(int, int, const std::string&)>& progress = {});

}  // namespace vc2m::scenario
