// Declarative scenarios: one JSON file = one reproducible vC2M run.
//
// A scenario composes everything the CLI previously took as bespoke flag
// combinations — platform shape, taskset (generated mix or explicit CSV),
// allocation strategy, fault plan, enforcement policy, seeds — with the
// *expected outcome* (verdict, pinned solve digest, checker-clean trace,
// bounds on runtime metrics) into a single named artifact. The curated
// library under scenarios/ is the repo's standing regression corpus; every
// feature PR ships its operating points as scenarios instead of flag sprawl
// in scripts (docs/scenarios.md has the format reference and authoring
// recipe).
//
// The format is strict in the spirit of workload/taskset_io: the reader
// (built on the obs/json recursive-descent parser) rejects unknown keys,
// wrong types, duplicate keys, and non-finite numbers, each with the byte
// offset of the offending token, and every semantic cross-check (a
// simulate block under an unschedulable expectation, a trace expectation
// without a simulate block) fails at load time, not at run time.
//
//   {
//     "schema": "vc2m-scenario/1",
//     "name": "cache-thrash-storm",
//     "description": "heavy bimodal mix under partition revocations",
//     "platform": "A",                       // A | B | C (default A)
//     "solution": "ovf",                     // strategy key (default flat)
//     "seed": 42,                            // generator + solver seed
//     "workload": {"util": 1.0, "dist": "heavy", "vms": 2},
//                                            // or {"file": "tasks.csv"}
//     "faults": "overrun-factor=1.2,seed=9", // sim/faults.h spec (optional)
//     "policy": "degrade",                   // enforcement (default strict)
//     "simulate": {"hyperperiods": 3},       // optional; absent = solve only
//     "expect": {
//       "verdict": "schedulable",            // or "unschedulable"
//       "digest": "sched=1|cores=...",       // pinned solve digest (opt.)
//       "trace_clean": true,                 // checker must be clean (opt.)
//       "min_faults_injected": 1,            // sim metric bounds (opt.)
//       "max_deadline_misses": 0,
//       "rejection_constraints": ["bw_pool_exhausted"]  // unsched. only
//     }
//   }
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "workload/generator.h"

namespace vc2m::scenario {

inline constexpr const char* kScenarioSchema = "vc2m-scenario/1";

// Domain caps for integer fields. Bounds are checked on the raw parsed
// number *before* narrowing to int, so an absurd value (e.g. 2^32 + 1)
// cannot wrap into range and be silently accepted as a different one.
// scripts/scenarios_validate.py enforces the same caps from the outside.
inline constexpr int kMaxVms = 1024;
inline constexpr int kMaxHyperperiods = 1000000;

/// Where the taskset comes from: the §5.1 generator or an explicit CSV
/// (resolved relative to the scenario file's directory).
struct WorkloadSpec {
  enum class Kind { kGenerate, kFile };
  Kind kind = Kind::kGenerate;
  double util = 1.0;  ///< target reference utilization (kGenerate)
  workload::UtilDist dist = workload::UtilDist::kUniform;
  int vms = 1;
  std::string file;  ///< taskset CSV path (kFile), already resolved
};

struct SimulateSpec {
  int hyperperiods = 3;  ///< simulated horizon in taskset hyperperiods
};

/// Pinned expectations — what turns a scenario into a regression test.
struct Expectation {
  bool schedulable = false;   ///< required verdict
  std::string digest;         ///< pinned solve digest ("" = unpinned)
  std::optional<bool> trace_clean;          ///< invariant checker verdict
  std::optional<std::uint64_t> min_faults_injected;
  std::optional<std::uint64_t> max_deadline_misses;
  /// Constraints that must each appear in the per-VM rejection chain
  /// (names as obs::to_string(DecisionConstraint)); unschedulable only.
  std::vector<std::string> rejection_constraints;
};

struct Scenario {
  std::string name;  ///< [a-z0-9-]+, unique within a corpus
  std::string description;
  std::string platform = "A";
  std::string solution = "flat";
  std::uint64_t seed = 42;
  WorkloadSpec workload;
  std::string faults;            ///< sim/faults.h spec; "" = fault-free
  std::string policy = "strict"; ///< enforcement policy name
  std::optional<SimulateSpec> simulate;
  Expectation expect;
  std::string source;  ///< file it was loaded from ("" for in-memory text)
  /// text_digest of the source document; checkpointed with each record so
  /// --resume re-runs scenarios whose files changed.
  std::string content_hash;
};

/// Parse and fully validate one scenario document. `source` names the
/// origin in error messages; relative workload files resolve against its
/// directory. Throws util::Error with "<source>: ... at offset N" on any
/// structural or semantic problem.
Scenario load_scenario(const std::string& text, const std::string& source);

/// Read, parse, and validate a scenario file. Throws util::Error.
Scenario load_scenario_file(const std::string& path);

/// Scenario files in `path`: the sorted `*.json` entries when it is a
/// directory, or just `path` when it is a file. Throws util::Error when the
/// path does not exist or a directory holds no scenario files.
std::vector<std::string> discover_scenario_files(const std::string& path);

}  // namespace vc2m::scenario
