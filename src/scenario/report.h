// The versioned scenario-report artifact ("vc2m-scenario-report/1"):
// the machine-readable outcome of a matrix run, written through the same
// strict obs/json layer as the bench and explain reports.
//
// Every field is deterministic — verdicts, digests, simulator event counts
// — and records are sorted by scenario name, so a report is bit-identical
// for any --jobs value, for a resumed run, and for shard reports merged
// back together (scripts/check.sh diffs a 2-way-sharded merge against an
// unsharded run byte for byte). Wall-clock timing deliberately stays out;
// the bench-report pipeline owns performance numbers.
//
// The same format doubles as the matrix runner's checkpoint file: a
// checkpoint is simply a report holding the records completed so far.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace vc2m::scenario {

inline constexpr const char* kReportSchema = "vc2m-scenario-report/1";

/// Outcome of one scenario run. All fields are pure functions of the
/// scenario file and the binary — nothing wall-clock-dependent.
struct ScenarioRecord {
  std::string name;
  std::string file;  ///< basename of the scenario file
  /// text_digest of the scenario document. --resume only reuses a
  /// checkpointed record when this still matches the file on disk.
  std::string scenario_hash;
  bool schedulable = false;
  std::string digest;  ///< solve digest (scenario/digest.h)
  bool passed = false;
  std::vector<std::string> failures;  ///< expectation mismatches
  /// Constraint names from the per-VM rejection chain (unschedulable only).
  std::vector<std::string> rejection_constraints;
  bool simulated = false;
  // Simulator metrics (all zero when !simulated).
  std::uint64_t jobs_released = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t jobs_killed = 0;
  std::uint64_t jobs_deferred = 0;
  std::uint64_t trace_events = 0;
  std::uint64_t trace_violations = 0;
};

struct ScenarioReport {
  std::string schema = kReportSchema;
  std::string git_rev;
  std::string corpus;  ///< the corpus path label the runner was given
  int shard_index = 0;
  int shard_count = 1;
  /// True when the run stopped early on SIGINT/SIGTERM: the report holds
  /// only the scenarios that finished and must not be judged as complete.
  bool interrupted = false;
  std::vector<ScenarioRecord> records;  ///< sorted by name

  std::size_t passed() const {
    std::size_t n = 0;
    for (const auto& r : records) n += r.passed ? 1 : 0;
    return n;
  }
  std::size_t failed() const { return records.size() - passed(); }
  bool all_passed() const { return failed() == 0; }
  /// Record by scenario name; nullptr when absent.
  const ScenarioRecord* find(const std::string& name) const;
};

void write_scenario_report(std::ostream& os, const ScenarioReport& r);
void write_scenario_report_file(const std::string& path,
                                const ScenarioReport& r);

/// Strict reader (throws util::Error on malformed JSON, duplicate records,
/// or a schema it does not speak). Unknown top-level fields — a newer
/// writer's additions — are surfaced through `notes` (when given) instead
/// of being rejected.
ScenarioReport read_scenario_report(std::istream& is,
                                    const std::string& what = "scenario report",
                                    std::vector<std::string>* notes = nullptr);
ScenarioReport read_scenario_report_file(const std::string& path,
                                         std::vector<std::string>* notes =
                                             nullptr);

/// Merge shard reports into one: union of records re-sorted by name, shard
/// reset to 0/1. Throws util::Error when inputs disagree on corpus or
/// git_rev, or when two shards carry the same scenario (shards must be
/// disjoint).
ScenarioReport merge_scenario_reports(const std::vector<ScenarioReport>& in);

}  // namespace vc2m::scenario
