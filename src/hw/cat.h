// Intel Cache Allocation Technology (CAT) model, as virtualized by vCAT [16].
//
// vC2M divides the shared last-level cache into C equal partitions (CAT ways)
// and gives each core a disjoint, contiguous subset. This model enforces the
// architectural rules a real CAT programming sequence must respect:
//   - a capacity bitmask (CBM) must be non-empty and contiguous;
//   - a CBM must have at least `min_ways` bits (hardware minimum, the paper's
//     C_min);
//   - cores are bound to a class of service (COS) via IA32_PQR_ASSOC;
//   - the CBM array is package-scoped.
// On top of the raw interface, `program_disjoint_plan` converts a per-core
// way-count vector (the output of the hypervisor-level allocator) into COS
// masks, guaranteeing inter-core disjointness.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hw/msr.h"

namespace vc2m::hw {

class Cat {
 public:
  /// @param msr       backing register file
  /// @param num_ways  number of cache partitions C (CBM width)
  /// @param num_cos   number of classes of service supported by the part
  /// @param min_ways  architectural minimum CBM population (C_min)
  Cat(MsrFile& msr, unsigned num_ways, unsigned num_cos, unsigned min_ways);

  unsigned num_ways() const { return num_ways_; }
  unsigned num_cos() const { return num_cos_; }
  unsigned min_ways() const { return min_ways_; }
  unsigned num_cores() const;

  /// Program COS `cos` with capacity bitmask `cbm`.
  /// Throws util::Error on a non-contiguous, empty, too-narrow, or
  /// out-of-range mask — mirroring the #GP a real wrmsr would raise.
  void write_cbm(unsigned cos, std::uint64_t cbm);

  std::uint64_t read_cbm(unsigned cos) const;

  /// Bind `core` to class of service `cos` (IA32_PQR_ASSOC).
  void bind_core(unsigned core, unsigned cos);

  unsigned cos_of_core(unsigned core) const;

  /// Effective mask a core currently operates under.
  std::uint64_t effective_mask(unsigned core) const;

  /// Number of ways the core's current COS grants it.
  unsigned ways_of_core(unsigned core) const;

  /// True iff no two distinct *bound* cores share a cache way.
  bool cores_disjoint() const;

  /// Given the allocator's per-core way counts (ways[i] ways for core i,
  /// ways[i] >= min_ways or 0 for an unused core), lay the cores out as
  /// consecutive contiguous regions, program one COS per core, and bind it.
  /// Throws if the counts exceed the cache or the COS budget.
  void program_disjoint_plan(const std::vector<unsigned>& ways_per_core);

  /// Validates a CBM without writing it; returns the failure reason.
  std::optional<std::string> validate_cbm(std::uint64_t cbm) const;

 private:
  MsrFile& msr_;
  unsigned num_ways_;
  unsigned num_cos_;
  unsigned min_ways_;
};

/// True iff the set bits of `mask` form one contiguous run.
bool contiguous_mask(std::uint64_t mask);

/// Contiguous mask of `count` bits starting at bit `offset`.
std::uint64_t make_mask(unsigned offset, unsigned count);

}  // namespace vc2m::hw
