// Local APIC model — just the slice the BW regulator needs.
//
// The prototype configures each core's LAPIC to deliver the performance-
// counter overflow interrupt (PMI) to that core, where the BW enforcer
// handler runs. This model provides the LVT perf-counter entry (vector +
// mask bit) and delivery to a registered handler, including the masked-
// interrupt case (delivery suppressed, not queued — PMIs are edge-triggered).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/error.h"

namespace vc2m::hw {

class Lapic {
 public:
  using Handler = std::function<void(unsigned core, std::uint8_t vector)>;

  explicit Lapic(unsigned num_cores) : lvt_pc_(num_cores) {}

  unsigned num_cores() const { return static_cast<unsigned>(lvt_pc_.size()); }

  /// Program the LVT performance-counter entry of `core`.
  void configure_pmi(unsigned core, std::uint8_t vector, bool masked) {
    VC2M_CHECK(core < num_cores());
    lvt_pc_[core].vector = vector;
    lvt_pc_[core].masked = masked;
  }

  void set_handler(Handler h) { handler_ = std::move(h); }

  bool masked(unsigned core) const {
    VC2M_CHECK(core < num_cores());
    return lvt_pc_[core].masked;
  }

  std::uint8_t vector(unsigned core) const {
    VC2M_CHECK(core < num_cores());
    return lvt_pc_[core].vector;
  }

  /// Deliver the PMI on `core`. Returns true iff the handler actually ran
  /// (entry unmasked and a handler registered).
  bool deliver_pmi(unsigned core) {
    VC2M_CHECK(core < num_cores());
    ++delivery_attempts_;
    if (lvt_pc_[core].masked || !handler_) return false;
    ++deliveries_;
    handler_(core, lvt_pc_[core].vector);
    return true;
  }

  std::uint64_t delivery_attempts() const { return delivery_attempts_; }
  std::uint64_t deliveries() const { return deliveries_; }

 private:
  struct LvtEntry {
    std::uint8_t vector = 0;
    bool masked = true;  // architectural reset state
  };
  std::vector<LvtEntry> lvt_pc_;
  Handler handler_;
  std::uint64_t delivery_attempts_ = 0;
  std::uint64_t deliveries_ = 0;
};

}  // namespace vc2m::hw
