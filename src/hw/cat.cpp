#include "hw/cat.h"

#include <bit>
#include <string>

#include "util/error.h"

namespace vc2m::hw {

bool contiguous_mask(std::uint64_t mask) {
  if (mask == 0) return false;
  const std::uint64_t shifted = mask >> std::countr_zero(mask);
  return (shifted & (shifted + 1)) == 0;
}

std::uint64_t make_mask(unsigned offset, unsigned count) {
  VC2M_CHECK(count > 0 && count <= 64 && offset + count <= 64);
  const std::uint64_t ones = count == 64 ? ~0ull : ((1ull << count) - 1);
  return ones << offset;
}

Cat::Cat(MsrFile& msr, unsigned num_ways, unsigned num_cos, unsigned min_ways)
    : msr_(msr), num_ways_(num_ways), num_cos_(num_cos), min_ways_(min_ways) {
  VC2M_CHECK(num_ways >= 1 && num_ways <= 64);
  VC2M_CHECK(num_cos >= 1 && num_cos <= 128);
  VC2M_CHECK(min_ways >= 1 && min_ways <= num_ways);
  // Reset state: all COS get the full mask (architectural default) and all
  // cores are bound to COS 0, i.e. no isolation until programmed.
  for (unsigned cos = 0; cos < num_cos_; ++cos)
    msr_.write(0, IA32_L3_MASK_0 + cos, make_mask(0, num_ways_));
  for (unsigned core = 0; core < msr_.num_cores(); ++core)
    msr_.write(core, IA32_PQR_ASSOC, 0);
}

unsigned Cat::num_cores() const { return msr_.num_cores(); }

std::optional<std::string> Cat::validate_cbm(std::uint64_t cbm) const {
  if (cbm == 0) return "empty capacity bitmask";
  if (cbm >> num_ways_) return "mask exceeds cache way count";
  if (!contiguous_mask(cbm)) return "non-contiguous capacity bitmask";
  if (static_cast<unsigned>(std::popcount(cbm)) < min_ways_)
    return "mask narrower than the architectural minimum";
  return std::nullopt;
}

void Cat::write_cbm(unsigned cos, std::uint64_t cbm) {
  VC2M_CHECK_MSG(cos < num_cos_, "COS " << cos << " out of range");
  if (const auto err = validate_cbm(cbm))
    throw util::Error("CAT: " + *err);
  msr_.write(0, IA32_L3_MASK_0 + cos, cbm);
}

std::uint64_t Cat::read_cbm(unsigned cos) const {
  VC2M_CHECK(cos < num_cos_);
  return msr_.read(0, IA32_L3_MASK_0 + cos);
}

void Cat::bind_core(unsigned core, unsigned cos) {
  VC2M_CHECK(core < msr_.num_cores());
  VC2M_CHECK_MSG(cos < num_cos_, "COS " << cos << " out of range");
  // PQR_ASSOC keeps the COS in bits [63:32]; preserve the RMID field.
  const std::uint64_t old = msr_.read(core, IA32_PQR_ASSOC);
  msr_.write(core, IA32_PQR_ASSOC,
             (old & 0xFFFFFFFFull) | (static_cast<std::uint64_t>(cos) << 32));
}

unsigned Cat::cos_of_core(unsigned core) const {
  VC2M_CHECK(core < msr_.num_cores());
  return static_cast<unsigned>(msr_.read(core, IA32_PQR_ASSOC) >> 32);
}

std::uint64_t Cat::effective_mask(unsigned core) const {
  return read_cbm(cos_of_core(core));
}

unsigned Cat::ways_of_core(unsigned core) const {
  return static_cast<unsigned>(std::popcount(effective_mask(core)));
}

bool Cat::cores_disjoint() const {
  // Cores bound to the same COS form one isolation domain; disjointness is
  // required across *distinct* classes of service.
  std::uint64_t seen_cos = 0;  // num_cos_ <= 128, two words would do; CAT
                               // parts expose at most 16 COS in practice
  std::uint64_t seen_ways = 0;
  for (unsigned core = 0; core < msr_.num_cores(); ++core) {
    const unsigned cos = cos_of_core(core);
    if (cos < 64) {
      if (seen_cos & (1ull << cos)) continue;
      seen_cos |= 1ull << cos;
    }
    const std::uint64_t m = effective_mask(core);
    if (seen_ways & m) return false;
    seen_ways |= m;
  }
  return true;
}

void Cat::program_disjoint_plan(const std::vector<unsigned>& ways_per_core) {
  VC2M_CHECK_MSG(ways_per_core.size() <= msr_.num_cores(),
                 "plan addresses more cores than the package has");
  unsigned total = 0;
  unsigned used_cores = 0;
  for (const unsigned w : ways_per_core) {
    if (w == 0) continue;
    VC2M_CHECK_MSG(w >= min_ways_, "core allocation below C_min");
    total += w;
    ++used_cores;
  }
  VC2M_CHECK_MSG(total <= num_ways_, "plan exceeds cache capacity");
  // One COS per used core, plus COS 0 kept as the (full-mask) default.
  VC2M_CHECK_MSG(used_cores + 1 <= num_cos_, "plan exceeds COS budget");

  unsigned offset = 0;
  unsigned cos = 1;
  for (unsigned core = 0; core < ways_per_core.size(); ++core) {
    const unsigned w = ways_per_core[core];
    if (w == 0) continue;
    write_cbm(cos, make_mask(offset, w));
    bind_core(core, cos);
    offset += w;
    ++cos;
  }
  // Park cores the plan does not use on the leftover region (shared among
  // them — nothing real-time runs there), so they cannot pollute the
  // allocated partitions. If no ways remain they stay on the default COS.
  const unsigned leftover = num_ways_ - offset;
  if (leftover >= min_ways_ && cos < num_cos_) {
    write_cbm(cos, make_mask(offset, leftover));
    for (unsigned core = 0; core < msr_.num_cores(); ++core)
      if (core >= ways_per_core.size() || ways_per_core[core] == 0)
        bind_core(core, cos);
  }
}

}  // namespace vc2m::hw
