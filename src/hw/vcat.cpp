#include "hw/vcat.h"

#include <bit>

#include "util/error.h"

namespace vc2m::hw {

VCat::VCat(Cat& cat) : cat_(cat), pcos_used_(cat.num_cos(), false) {
  // COS 0 is the hypervisor-owned default; never handed to guests.
  pcos_used_[0] = true;
}

void VCat::assign_region(int vm, unsigned offset, unsigned count) {
  VC2M_CHECK_MSG(!vms_.count(vm), "VM already owns a cache region");
  VC2M_CHECK_MSG(count >= cat_.min_ways(), "region below the CAT minimum");
  VC2M_CHECK_MSG(offset + count <= cat_.num_ways(),
                 "region exceeds the cache");
  for (const auto& [other, st] : vms_) {
    const bool disjoint = offset + count <= st.region.offset ||
                          st.region.offset + st.region.count <= offset;
    VC2M_CHECK_MSG(disjoint, "region overlaps VM " << other);
  }
  vms_[vm].region = {offset, count};
}

void VCat::remove_vm(int vm) {
  auto it = vms_.find(vm);
  VC2M_CHECK_MSG(it != vms_.end(), "unknown VM");
  for (const auto& [vcos, pcos] : it->second.vcos_to_pcos) {
    // Cores bound to this class fall back to the hypervisor default.
    for (unsigned core = 0; core < cat_.num_cores(); ++core)
      if (cat_.cos_of_core(core) == pcos) cat_.bind_core(core, 0);
    pcos_used_[pcos] = false;
  }
  vms_.erase(it);
}

void VCat::resize_region(int vm, unsigned new_offset, unsigned new_count) {
  auto it = vms_.find(vm);
  VC2M_CHECK_MSG(it != vms_.end(), "unknown VM");
  VC2M_CHECK_MSG(new_count >= cat_.min_ways(), "region below the CAT minimum");
  VC2M_CHECK_MSG(new_offset + new_count <= cat_.num_ways(),
                 "region exceeds the cache");
  for (const auto& [other, st] : vms_) {
    if (other == vm) continue;
    const bool disjoint = new_offset + new_count <= st.region.offset ||
                          st.region.offset + st.region.count <= new_offset;
    VC2M_CHECK_MSG(disjoint, "region overlaps VM " << other);
  }
  it->second.region = {new_offset, new_count};
  rewrite_vm(it->second);
}

void VCat::guest_write_cbm(int vm, unsigned vcos, std::uint64_t virtual_cbm) {
  auto it = vms_.find(vm);
  VC2M_CHECK_MSG(it != vms_.end(), "unknown VM");
  VmState& st = it->second;
  const std::uint64_t region_mask = make_mask(0, st.region.count);
  VC2M_CHECK_MSG((virtual_cbm & ~region_mask) == 0,
                 "virtual CBM escapes the VM's cache region");
  if (!st.vcos_to_pcos.count(vcos)) st.vcos_to_pcos[vcos] = alloc_pcos();
  // Translation: shift into the region. Cat::write_cbm enforces the
  // architectural rules (contiguity, minimum width).
  cat_.write_cbm(st.vcos_to_pcos[vcos], virtual_cbm << st.region.offset);
  st.virtual_cbm[vcos] = virtual_cbm;
}

void VCat::bind_core(int vm, unsigned core, unsigned vcos) {
  const VmState& st = state_of(vm);
  const auto it = st.vcos_to_pcos.find(vcos);
  VC2M_CHECK_MSG(it != st.vcos_to_pcos.end(),
                 "virtual COS never programmed");
  cat_.bind_core(core, it->second);
}

std::optional<std::uint64_t> VCat::physical_cbm(int vm, unsigned vcos) const {
  const VmState& st = state_of(vm);
  const auto it = st.vcos_to_pcos.find(vcos);
  if (it == st.vcos_to_pcos.end()) return std::nullopt;
  return cat_.read_cbm(it->second);
}

std::optional<VCat::Region> VCat::region_of(int vm) const {
  const auto it = vms_.find(vm);
  if (it == vms_.end()) return std::nullopt;
  return it->second.region;
}

unsigned VCat::free_cos() const {
  unsigned n = 0;
  for (const bool used : pcos_used_)
    if (!used) ++n;
  return n;
}

unsigned VCat::alloc_pcos() {
  for (unsigned cos = 0; cos < pcos_used_.size(); ++cos) {
    if (!pcos_used_[cos]) {
      pcos_used_[cos] = true;
      return cos;
    }
  }
  throw util::Error("vCAT: out of physical COS entries");
}

void VCat::rewrite_vm(VmState& vm) {
  const std::uint64_t region_mask = make_mask(0, vm.region.count);
  for (auto& [vcos, virtual_cbm] : vm.virtual_cbm) {
    // Clip masks that no longer fit the (possibly smaller) region.
    std::uint64_t clipped = virtual_cbm & region_mask;
    if (clipped == 0 ||
        static_cast<unsigned>(std::popcount(clipped)) < cat_.min_ways())
      clipped = region_mask;  // fall back to the whole region
    virtual_cbm = clipped;
    cat_.write_cbm(vm.vcos_to_pcos[vcos], clipped << vm.region.offset);
  }
}

const VCat::VmState& VCat::state_of(int vm) const {
  const auto it = vms_.find(vm);
  VC2M_CHECK_MSG(it != vms_.end(), "unknown VM");
  return it->second;
}

}  // namespace vc2m::hw
