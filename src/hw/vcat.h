// vCAT — dynamic CAT virtualization (Xu et al., RTAS'17 [16]).
//
// vC2M's cache isolation "can be done by simply leveraging vCAT". vCAT lets
// each VM manage *virtual* classes of service over a private, contiguous
// region of the shared cache, while the hypervisor owns the physical COS
// array:
//   - the hypervisor assigns each VM a region [offset, offset+count) of
//     ways, disjoint across VMs;
//   - a guest programs virtual CBMs relative to its region; vCAT validates
//     containment and translates them into physical CBMs (shift by the
//     region offset) on dedicated physical COS entries;
//   - binding a core to a VM's virtual COS binds it to the backing
//     physical COS;
//   - regions can be resized/moved at runtime (dynamic repartitioning);
//     every dependent physical COS is rewritten transactionally.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "hw/cat.h"

namespace vc2m::hw {

class VCat {
 public:
  explicit VCat(Cat& cat);

  /// Assign VM `vm` the contiguous region of `count` ways starting at
  /// `offset`. Throws if it overlaps another VM's region, exceeds the
  /// cache, or the VM already has a region.
  void assign_region(int vm, unsigned offset, unsigned count);

  /// Release the VM's region and free all its physical COS entries.
  /// Cores bound to the VM's classes fall back to COS 0.
  void remove_vm(int vm);

  /// Resize/move a VM's region. All of the VM's virtual COS translations
  /// are rewritten; virtual masks that no longer fit the new region are
  /// clipped to it (and must stay architecturally valid).
  void resize_region(int vm, unsigned new_offset, unsigned new_count);

  /// Guest operation: program virtual COS `vcos` of `vm` with a CBM
  /// expressed relative to the VM's region (bit 0 = first way of the
  /// region). Allocates a backing physical COS on first use. Throws if the
  /// mask escapes the region or violates CAT rules.
  void guest_write_cbm(int vm, unsigned vcos, std::uint64_t virtual_cbm);

  /// Guest operation: bind a physical core (currently serving this VM) to
  /// the VM's virtual COS.
  void bind_core(int vm, unsigned core, unsigned vcos);

  /// Translated physical CBM backing (vm, vcos); nullopt if never written.
  std::optional<std::uint64_t> physical_cbm(int vm, unsigned vcos) const;

  struct Region {
    unsigned offset = 0;
    unsigned count = 0;
  };
  std::optional<Region> region_of(int vm) const;

  /// Number of physical COS entries still available for guests.
  unsigned free_cos() const;

 private:
  struct VmState {
    Region region;
    std::map<unsigned, unsigned> vcos_to_pcos;
    std::map<unsigned, std::uint64_t> virtual_cbm;  // as written by guest
  };

  unsigned alloc_pcos();
  void rewrite_vm(VmState& vm);
  const VmState& state_of(int vm) const;

  Cat& cat_;
  std::map<int, VmState> vms_;
  std::vector<bool> pcos_used_;  // physical COS allocation bitmap
};

}  // namespace vc2m::hw
