// Performance-monitoring-unit (PMU) model.
//
// vC2M's bandwidth regulator programs an unused perf counter on each core to
// count last-level-cache misses (treated as memory requests [18]) and presets
// it so that it overflows exactly when the core exhausts its per-period
// bandwidth budget. This model reproduces the architectural behaviour the
// prototype relies on:
//   - 48-bit counters that wrap at 2^48;
//   - preset-to-overflow: writing (2^48 - budget) makes the counter overflow
//     after `budget` further events;
//   - an overflow sets the counter's bit in IA32_PERF_GLOBAL_STATUS;
//   - overflow bits are sticky until cleared via IA32_PERF_GLOBAL_OVF_CTRL.
#pragma once

#include <cstdint>

#include "hw/msr.h"

namespace vc2m::hw {

/// Width of an architectural general-purpose counter.
inline constexpr unsigned kPmcWidth = 48;
inline constexpr std::uint64_t kPmcMask = (1ull << kPmcWidth) - 1;

/// Event-select encoding for "LLC misses" (architectural event 0x2E/0x41).
inline constexpr std::uint64_t kEvtSelLlcMisses = 0x41'2E;
/// EN bit of IA32_PERFEVTSELx.
inline constexpr std::uint64_t kEvtSelEnable = 1ull << 22;
/// INT bit of IA32_PERFEVTSELx (raise PMI on overflow).
inline constexpr std::uint64_t kEvtSelPmi = 1ull << 20;

/// One core's general-purpose counter 0, as used by the BW regulator.
class PerfCounter {
 public:
  PerfCounter(MsrFile& msr, unsigned core) : msr_(msr), core_(core) {
    VC2M_CHECK(core < msr.num_cores());
  }

  /// Program the event selector; enables counting and the overflow PMI.
  void program_llc_misses() {
    msr_.write(core_, IA32_PERFEVTSEL0,
               kEvtSelLlcMisses | kEvtSelEnable | kEvtSelPmi);
    msr_.set_bits(core_, IA32_PERF_GLOBAL_CTRL, 1ull << 0);
  }

  bool enabled() const {
    return (msr_.read(core_, IA32_PERFEVTSEL0) & kEvtSelEnable) &&
           (msr_.read(core_, IA32_PERF_GLOBAL_CTRL) & 1ull);
  }

  /// Preset so the counter overflows after exactly `budget` events.
  void preset_for_budget(std::uint64_t budget) {
    VC2M_CHECK_MSG(budget > 0 && budget <= kPmcMask, "budget out of range");
    msr_.write(core_, IA32_PMC0, (kPmcMask + 1 - budget) & kPmcMask);
  }

  std::uint64_t value() const { return msr_.read(core_, IA32_PMC0) & kPmcMask; }

  /// Events still allowed before the counter overflows (in [1, 2^48]).
  std::uint64_t remaining_before_overflow() const {
    return kPmcMask + 1 - value();
  }

  /// Account `events` occurrences. Returns true iff the counter crossed the
  /// overflow boundary (and sets the sticky status bit accordingly).
  bool count(std::uint64_t events) {
    if (!enabled()) return false;
    const std::uint64_t before = value();
    msr_.write(core_, IA32_PMC0, (before + events) & kPmcMask);
    const bool overflowed = events >= kPmcMask + 1 - before;
    if (overflowed) msr_.set_bits(core_, IA32_PERF_GLOBAL_STATUS, 1ull << 0);
    return overflowed;
  }

  bool overflow_pending() const {
    return msr_.read(core_, IA32_PERF_GLOBAL_STATUS) & 1ull;
  }

  /// Clear the sticky overflow bit (write to IA32_PERF_GLOBAL_OVF_CTRL).
  void clear_overflow() {
    msr_.clear_bits(core_, IA32_PERF_GLOBAL_STATUS, 1ull << 0);
  }

 private:
  MsrFile& msr_;
  unsigned core_;
};

}  // namespace vc2m::hw
