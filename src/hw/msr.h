// Model-specific-register (MSR) file model.
//
// The CAT and PMU models sit on top of this register file exactly the way
// the real vC2M prototype sits on wrmsr/rdmsr: cache masks and perf-counter
// programming are reads/writes of architectural MSRs. Core-scoped registers
// (PMCs, PQR_ASSOC, LVT) are stored per core; package-scoped registers
// (the L3 CBM array) are shared by all cores of the package.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/error.h"

namespace vc2m::hw {

using MsrAddr = std::uint32_t;

// Architectural MSR addresses used by the vC2M prototype.
inline constexpr MsrAddr IA32_PMC0 = 0x0C1;               // perf counter 0
inline constexpr MsrAddr IA32_PERFEVTSEL0 = 0x186;        // event select 0
inline constexpr MsrAddr IA32_PERF_GLOBAL_STATUS = 0x38E; // overflow status
inline constexpr MsrAddr IA32_PERF_GLOBAL_CTRL = 0x38F;   // global enable
inline constexpr MsrAddr IA32_PERF_GLOBAL_OVF_CTRL = 0x390; // overflow clear
inline constexpr MsrAddr IA32_PQR_ASSOC = 0xC8F;          // core -> COS binding
inline constexpr MsrAddr IA32_L3_MASK_0 = 0xC90;          // COS 0 capacity mask

class MsrFile {
 public:
  explicit MsrFile(unsigned num_cores) : core_regs_(num_cores) {
    VC2M_CHECK(num_cores > 0);
    // The L3 capacity bitmask array is package-scoped on Intel parts.
    for (MsrAddr a = IA32_L3_MASK_0; a < IA32_L3_MASK_0 + 128; ++a)
      package_scoped_.insert(a);
  }

  unsigned num_cores() const { return static_cast<unsigned>(core_regs_.size()); }

  std::uint64_t read(unsigned core, MsrAddr addr) const {
    VC2M_CHECK(core < num_cores());
    const auto& regs = package_scoped_.count(addr) ? package_regs_ : core_regs_[core];
    const auto it = regs.find(addr);
    return it == regs.end() ? 0 : it->second;
  }

  void write(unsigned core, MsrAddr addr, std::uint64_t value) {
    VC2M_CHECK(core < num_cores());
    auto& regs = package_scoped_.count(addr) ? package_regs_ : core_regs_[core];
    regs[addr] = value;
  }

  /// Set/clear individual bits (models read-modify-write sequences).
  void set_bits(unsigned core, MsrAddr addr, std::uint64_t mask) {
    write(core, addr, read(core, addr) | mask);
  }
  void clear_bits(unsigned core, MsrAddr addr, std::uint64_t mask) {
    write(core, addr, read(core, addr) & ~mask);
  }

 private:
  std::vector<std::unordered_map<MsrAddr, std::uint64_t>> core_regs_;
  std::unordered_map<MsrAddr, std::uint64_t> package_regs_;
  std::unordered_set<MsrAddr> package_scoped_;
};

}  // namespace vc2m::hw
